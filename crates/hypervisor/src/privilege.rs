//! The Xoar privilege-assignment model (§3.1, Figure 3.1).
//!
//! A VM is configured as a shard via a `shard` block in its config file,
//! which makes three kinds of capability assignable:
//!
//! 1. `assign_pci_device(PCI domain, bus, slot)` — direct hardware access;
//! 2. `permit_hypercall(hypercall id)` — whitelisting individual privileged
//!    hypercalls beyond the default unprivileged set;
//! 3. `allow_delegation(guest id)` — delegating the shard's administrative
//!    control to another VM (used for per-user toolstacks in private
//!    clouds, §3.4.2).
//!
//! The [`PrivilegeSet`] records exactly these assignments plus the handful
//! of hardware privileges (I/O ports, MMIO ranges, IRQ lines) that §5.8
//! shows were implicitly granted to Dom0 by hard-coded checks in Xen.

use std::collections::BTreeSet;
use std::fmt;

use crate::domain::DomId;
use crate::hypercall::HypercallId;

/// Address of a device on the PCI bus: `(domain, bus, slot)` as in the
/// paper's `assign_pci_device(PCI domain, bus, slot)` API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PciAddress {
    /// PCI segment/domain.
    pub domain: u16,
    /// Bus number.
    pub bus: u8,
    /// Slot (device) number.
    pub slot: u8,
}

xoar_codec::impl_json_struct!(PciAddress { domain, bus, slot });

impl PciAddress {
    /// Creates a PCI address.
    pub fn new(domain: u16, bus: u8, slot: u8) -> Self {
        PciAddress { domain, bus, slot }
    }
}

impl fmt::Display for PciAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04x}:{:02x}:{:02x}", self.domain, self.bus, self.slot)
    }
}

/// An inclusive range of x86 I/O ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct IoPortRange {
    /// First port in the range.
    pub start: u16,
    /// Last port in the range (inclusive).
    pub end: u16,
}

xoar_codec::impl_json_struct!(IoPortRange { start, end });

impl IoPortRange {
    /// Creates a range; `start` must not exceed `end`.
    pub fn new(start: u16, end: u16) -> Self {
        assert!(start <= end, "inverted I/O port range");
        IoPortRange { start, end }
    }

    /// Whether `port` lies within the range.
    pub fn contains(&self, port: u16) -> bool {
        (self.start..=self.end).contains(&port)
    }
}

/// An MMIO region expressed in machine frame numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct MmioRange {
    /// First frame of the region.
    pub start_mfn: u64,
    /// Number of frames.
    pub frames: u64,
}

xoar_codec::impl_json_struct!(MmioRange { start_mfn, frames });

impl MmioRange {
    /// Whether `mfn` lies within the region.
    pub fn contains(&self, mfn: u64) -> bool {
        mfn >= self.start_mfn && mfn < self.start_mfn + self.frames
    }
}

/// The complete set of extra privileges assigned to a domain.
///
/// An ordinary guest has `PrivilegeSet::default()`: no assigned devices, no
/// privileged hypercalls, no delegation. Stock Xen's Dom0 is modelled by
/// [`PrivilegeSet::dom0`], which holds everything — the "monolithic trust
/// domain" of Figure 2.1.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrivilegeSet {
    /// PCI devices passed through to this domain.
    pub pci_devices: BTreeSet<PciAddress>,
    /// Privileged hypercalls this domain may issue beyond the unprivileged
    /// default set.
    pub hypercalls: BTreeSet<HypercallId>,
    /// Domains to which this shard's administration is delegated.
    pub delegated_to: BTreeSet<DomId>,
    /// I/O port ranges this domain may access.
    pub io_ports: BTreeSet<IoPortRange>,
    /// MMIO regions this domain may map.
    pub mmio: BTreeSet<MmioRange>,
    /// Physical IRQ lines routed to this domain.
    pub irqs: BTreeSet<u32>,
    /// Whether the domain may map arbitrary guest memory (the blanket
    /// "Dom0 privilege"; in Xoar only the Builder holds this).
    pub map_foreign_any: bool,
}

xoar_codec::impl_json_struct!(PrivilegeSet {
    pci_devices,
    hypercalls,
    delegated_to,
    io_ports,
    mmio,
    irqs,
    map_foreign_any,
});

impl PrivilegeSet {
    /// The blanket privilege set of stock Xen's Dom0.
    pub fn dom0() -> Self {
        PrivilegeSet {
            map_foreign_any: true,
            hypercalls: HypercallId::all_privileged().into_iter().collect(),
            io_ports: [IoPortRange::new(0, u16::MAX)].into_iter().collect(),
            ..Default::default()
        }
    }

    /// Implements `assign_pci_device` from Figure 3.1.
    pub fn assign_pci_device(&mut self, addr: PciAddress) {
        self.pci_devices.insert(addr);
    }

    /// Implements `permit_hypercall` from Figure 3.1.
    pub fn permit_hypercall(&mut self, id: HypercallId) {
        self.hypercalls.insert(id);
    }

    /// Implements `allow_delegation` from Figure 3.1.
    pub fn allow_delegation(&mut self, guest: DomId) {
        self.delegated_to.insert(guest);
    }

    /// Whether the domain may issue privileged hypercall `id`.
    pub fn permits_hypercall(&self, id: HypercallId) -> bool {
        !id.is_privileged() || self.hypercalls.contains(&id)
    }

    /// Whether the domain may access I/O port `port`.
    pub fn permits_io_port(&self, port: u16) -> bool {
        self.io_ports.iter().any(|r| r.contains(port))
    }

    /// Whether the domain may map MMIO frame `mfn`.
    pub fn permits_mmio(&self, mfn: u64) -> bool {
        self.mmio.iter().any(|r| r.contains(mfn))
    }

    /// Whether the set is completely empty (a plain guest).
    pub fn is_unprivileged(&self) -> bool {
        self.pci_devices.is_empty()
            && self.hypercalls.is_empty()
            && self.delegated_to.is_empty()
            && self.io_ports.is_empty()
            && self.mmio.is_empty()
            && self.irqs.is_empty()
            && !self.map_foreign_any
    }

    /// A coarse scalar measure of how much authority the set carries; used
    /// by the security-evaluation crate to compare configurations.
    pub fn authority_score(&self) -> u64 {
        let mut score = 0u64;
        score += self.pci_devices.len() as u64 * 10;
        score += self
            .hypercalls
            .iter()
            .map(|h| h.risk_weight() as u64)
            .sum::<u64>();
        score += self.delegated_to.len() as u64;
        score += self.io_ports.len() as u64 * 2;
        score += self.mmio.len() as u64 * 2;
        score += self.irqs.len() as u64;
        if self.map_foreign_any {
            score += 100;
        }
        score
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_set_is_unprivileged() {
        let p = PrivilegeSet::default();
        assert!(p.is_unprivileged());
        assert_eq!(p.authority_score(), 0);
    }

    #[test]
    fn dom0_set_is_maximal() {
        let p = PrivilegeSet::dom0();
        assert!(p.map_foreign_any);
        assert!(p.permits_io_port(0x3f8));
        assert!(p.permits_hypercall(HypercallId::DomctlCreateDomain));
        assert!(p.authority_score() > 100);
    }

    #[test]
    fn figure_3_1_api() {
        let mut p = PrivilegeSet::default();
        p.assign_pci_device(PciAddress::new(0, 2, 0));
        p.permit_hypercall(HypercallId::GnttabMapGrantRef);
        p.allow_delegation(DomId(5));
        assert!(p.pci_devices.contains(&PciAddress::new(0, 2, 0)));
        assert!(p.permits_hypercall(HypercallId::GnttabMapGrantRef));
        assert!(p.delegated_to.contains(&DomId(5)));
        assert!(!p.is_unprivileged());
    }

    #[test]
    fn unprivileged_hypercalls_always_permitted() {
        let p = PrivilegeSet::default();
        assert!(p.permits_hypercall(HypercallId::EvtchnSend));
        assert!(!p.permits_hypercall(HypercallId::DomctlDestroyDomain));
    }

    #[test]
    fn io_port_ranges() {
        let r = IoPortRange::new(0x3f8, 0x3ff);
        assert!(r.contains(0x3f8));
        assert!(r.contains(0x3ff));
        assert!(!r.contains(0x400));
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_io_range_panics() {
        IoPortRange::new(10, 5);
    }

    #[test]
    fn mmio_ranges() {
        let r = MmioRange {
            start_mfn: 100,
            frames: 4,
        };
        assert!(r.contains(100));
        assert!(r.contains(103));
        assert!(!r.contains(104));
        assert!(!r.contains(99));
    }

    #[test]
    fn pci_address_display() {
        let a = PciAddress::new(0, 2, 1);
        assert_eq!(a.to_string(), "0000:02:01");
    }
}
