//! # xoar-hypervisor
//!
//! A deterministic, user-space model of a Xen-like Type-1 hypervisor — the
//! substrate on which the Xoar platform (SOSP 2011, "Breaking Up is Hard
//! to Do") is reproduced.
//!
//! The crate models every mechanism the paper's security argument rests
//! on, with the same semantics and enforced at the same boundary (the
//! hypercall gate):
//!
//! * [`domain`] — domains, lifecycle, roles, and the parent-toolstack /
//!   delegation flags of §5.6;
//! * [`memory`] — machine frames, ownership, pseudo-physical maps, and
//!   dirty tracking;
//! * [`grant`] — grant tables: capability-style page sharing (§4.3);
//! * [`event`] — event channels and VIRQs (§4.2);
//! * [`hypercall`] — the ~40-call interface with privileged/unprivileged
//!   partition (§4.1);
//! * [`privilege`] — the Figure 3.1 privilege-assignment API
//!   (`assign_pci_device`, `permit_hypercall`, `allow_delegation`);
//! * [`sched`] — a credit-scheduler model for simulated time accounting,
//!   plus per-pcpu runqueues with work stealing;
//! * [`snapshot`] — the snapshot/rollback microreboot mechanism with
//!   copy-on-write dirty tracking and recovery boxes (§3.3);
//! * [`region`] — per-domain state regions: each domain's grant table,
//!   event ports, and console ring behind one owner;
//! * [`xregion`] — the typed cross-region operations ([`xregion::CrossRegionOp`])
//!   that are the only paths touching two regions at once;
//! * [`hypervisor`] — the monitor itself, tying the pieces together and
//!   making every access-control decision.
//!
//! # Examples
//!
//! ```
//! use xoar_hypervisor::{
//!     domain::DomainRole,
//!     hypercall::Hypercall,
//!     hypervisor::Hypervisor,
//!     privilege::PrivilegeSet,
//! };
//!
//! let mut hv = Hypervisor::with_default_host();
//! let dom0 = hv
//!     .create_boot_domain("dom0", DomainRole::ControlVm, 750, PrivilegeSet::dom0())
//!     .unwrap();
//! let guest = hv
//!     .hypercall(
//!         dom0,
//!         Hypercall::DomctlCreateDomain {
//!             name: "guest".into(),
//!             memory_mib: 1024,
//!             vcpus: 2,
//!         },
//!     )
//!     .unwrap()
//!     .dom_id()
//!     .unwrap();
//! assert_eq!(hv.domain(guest).unwrap().name, "guest");
//! ```

#![warn(missing_docs)]

pub mod domain;
pub mod error;
pub mod event;
pub mod fasthash;
pub mod grant;
pub mod hypercall;
pub mod hypervisor;
pub mod memory;
pub mod privilege;
pub mod region;
pub mod sched;
pub mod snapshot;
pub mod xregion;

pub use domain::{DomId, Domain, DomainRole, DomainState};
pub use error::{HvError, HvResult};
pub use hypercall::{Hypercall, HypercallId, HypercallRet};
pub use hypervisor::{DispatchHook, HostConfig, Hypervisor};
pub use privilege::{PciAddress, PrivilegeSet};
pub use region::Region;
pub use xregion::CrossRegionOp;
