//! Machine memory: frames, ownership, and pseudo-physical mappings.
//!
//! The hypervisor owns all machine memory and accounts for every 4 KiB
//! frame: which domain owns it, whether it is currently granted or foreign
//! mapped, and (for the snapshot subsystem) whether it has been written
//! since the last snapshot.
//!
//! Guests see *pseudo-physical* frame numbers ([`Pfn`]) which the
//! hypervisor translates to *machine* frame numbers ([`Mfn`]); Xoar's
//! security argument rests on the fact that only specific, whitelisted
//! domains may establish mappings of frames they do not own.
//!
//! Frame *contents* are modelled lazily: a frame holds an optional byte
//! vector capped at [`PAGE_SIZE`], so simulating a multi-gigabyte guest
//! does not consume gigabytes of host memory.

use std::collections::HashMap;
use std::fmt;

use crate::domain::DomId;
use crate::error::{HvResult, MemError};

/// Size of a page in bytes.
pub const PAGE_SIZE: usize = 4096;

/// A machine frame number (host-physical).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Mfn(pub u64);

xoar_codec::impl_json_newtype!(Mfn(u64));

impl fmt::Display for Mfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mfn:{:#x}", self.0)
    }
}

/// A pseudo-physical frame number (guest-physical).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pfn(pub u64);

xoar_codec::impl_json_newtype!(Pfn(u64));

impl fmt::Display for Pfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pfn:{:#x}", self.0)
    }
}

/// Per-frame metadata.
#[derive(Debug, Clone)]
struct FrameInfo {
    owner: DomId,
    /// Number of active grant mappings of this frame.
    grant_mappings: u32,
    /// Number of active foreign mappings of this frame.
    foreign_mappings: u32,
    /// Dirty since the owner's last snapshot (CoW tracking).
    dirty_since_snapshot: bool,
    /// Number of pseudo-physical mappings referencing this frame. 1 =
    /// exclusive; >1 = deduplicated copy-on-write sharing (Difference
    /// Engine / Satori style).
    share_count: u32,
    /// Logical contents (at most one page; empty means zero-filled).
    data: Vec<u8>,
}

/// Per-domain pseudo-physical address space: `Pfn -> Mfn`.
#[derive(Debug, Clone, Default)]
struct P2m {
    map: HashMap<u64, Mfn>,
    next_pfn: u64,
}

/// The machine-memory manager.
///
/// Tracks every allocated frame, its owner, and its mapping counts, and
/// maintains each domain's pseudo-physical map.
#[derive(Debug)]
pub struct MemoryManager {
    total_frames: u64,
    next_mfn: u64,
    frames: HashMap<u64, FrameInfo>,
    p2m: HashMap<DomId, P2m>,
    free_count: u64,
}

impl MemoryManager {
    /// Creates a manager for a host with `total_frames` frames of RAM.
    pub fn new(total_frames: u64) -> Self {
        MemoryManager {
            total_frames,
            next_mfn: 0x1000, // Leave a hole for "firmware", as real hosts do.
            frames: HashMap::new(),
            p2m: HashMap::new(),
            free_count: total_frames,
        }
    }

    /// Total machine frames.
    pub fn total_frames(&self) -> u64 {
        self.total_frames
    }

    /// Frames not yet allocated to any domain.
    pub fn free_frames(&self) -> u64 {
        self.free_count
    }

    /// Number of frames owned by `dom`.
    pub fn owned_frames(&self, dom: DomId) -> u64 {
        self.p2m.get(&dom).map_or(0, |m| m.map.len() as u64)
    }

    /// Allocates `count` frames to `dom`, extending its pseudo-physical
    /// space contiguously. Returns the first new [`Pfn`].
    pub fn populate(&mut self, dom: DomId, count: u64) -> HvResult<Pfn> {
        if count > self.free_count {
            return Err(MemError::OutOfFrames.into());
        }
        let p2m = self.p2m.entry(dom).or_default();
        let first = Pfn(p2m.next_pfn);
        for _ in 0..count {
            let mfn = Mfn(self.next_mfn);
            self.next_mfn += 1;
            self.frames.insert(
                mfn.0,
                FrameInfo {
                    owner: dom,
                    grant_mappings: 0,
                    foreign_mappings: 0,
                    dirty_since_snapshot: false,
                    share_count: 1,
                    data: Vec::new(),
                },
            );
            p2m.map.insert(p2m.next_pfn, mfn);
            p2m.next_pfn += 1;
        }
        self.free_count -= count;
        Ok(first)
    }

    /// Translates a domain-local [`Pfn`] to its machine frame.
    pub fn translate(&self, dom: DomId, pfn: Pfn) -> HvResult<Mfn> {
        self.p2m
            .get(&dom)
            .and_then(|m| m.map.get(&pfn.0))
            .copied()
            .ok_or_else(|| MemError::BadPfn(pfn.0).into())
    }

    /// Returns the owner of a machine frame.
    pub fn owner(&self, mfn: Mfn) -> HvResult<DomId> {
        self.frames
            .get(&mfn.0)
            .map(|f| f.owner)
            .ok_or_else(|| MemError::BadMfn(mfn.0).into())
    }

    /// Writes `data` into the frame at (`dom`, `pfn`), marking it dirty.
    ///
    /// A write to a deduplicated (shared) frame first breaks the sharing
    /// copy-on-write, so the other domains mapping the frame are never
    /// affected. Writes longer than [`PAGE_SIZE`] are rejected.
    pub fn write(&mut self, dom: DomId, pfn: Pfn, data: &[u8]) -> HvResult<()> {
        if data.len() > PAGE_SIZE {
            return Err(crate::error::HvError::InvalidArgument(format!(
                "write of {} bytes exceeds page size",
                data.len()
            )));
        }
        let mfn = self.exclusive_mfn(dom, pfn)?;
        let frame = self.frames.get_mut(&mfn.0).ok_or(MemError::BadMfn(mfn.0))?;
        frame.data = data.to_vec();
        frame.dirty_since_snapshot = true;
        Ok(())
    }

    /// Resolves (`dom`, `pfn`) to a frame exclusively owned by `dom`,
    /// breaking copy-on-write sharing if necessary.
    ///
    /// Used by every path that needs a writable or exportable frame:
    /// guest writes, grant installation, and foreign mapping — a shared
    /// frame must never be granted or foreign-mapped, or the grantee
    /// would reach other domains' memory.
    pub fn exclusive_mfn(&mut self, dom: DomId, pfn: Pfn) -> HvResult<Mfn> {
        let mfn = self.translate(dom, pfn)?;
        let (shared, data) = {
            let f = self.frames.get(&mfn.0).ok_or(MemError::BadMfn(mfn.0))?;
            (f.share_count > 1, f.data.clone())
        };
        if !shared {
            return Ok(mfn);
        }
        if self.free_count == 0 {
            return Err(MemError::OutOfFrames.into());
        }
        // Allocate a private copy and remap this domain's PFN to it.
        let new_mfn = Mfn(self.next_mfn);
        self.next_mfn += 1;
        self.free_count -= 1;
        self.frames.insert(
            new_mfn.0,
            FrameInfo {
                owner: dom,
                grant_mappings: 0,
                foreign_mappings: 0,
                dirty_since_snapshot: true,
                share_count: 1,
                data,
            },
        );
        if let Some(f) = self.frames.get_mut(&mfn.0) {
            f.share_count -= 1;
        }
        let p2m = self.p2m.get_mut(&dom).ok_or(MemError::BadPfn(pfn.0))?;
        p2m.map.insert(pfn.0, new_mfn);
        Ok(new_mfn)
    }

    /// Content-based page deduplication across all domains (the
    /// memory-density feature of the paper's introduction [21, 38]).
    ///
    /// Identical, non-empty, unmapped frames are merged onto one
    /// canonical frame; duplicates are freed; subsequent writes break the
    /// sharing via copy-on-write. Returns the number of frames freed.
    pub fn share_identical(&mut self) -> u64 {
        // Group candidate frames by content.
        let mut by_content: HashMap<Vec<u8>, Vec<Mfn>> = HashMap::new();
        for (&raw, f) in &self.frames {
            if f.data.is_empty() || f.grant_mappings > 0 || f.foreign_mappings > 0 {
                continue;
            }
            by_content.entry(f.data.clone()).or_default().push(Mfn(raw));
        }
        let mut freed = 0u64;
        for (_, mut group) in by_content {
            if group.len() < 2 {
                continue;
            }
            group.sort_by_key(|m| m.0);
            let canonical = group[0];
            for dup in &group[1..] {
                // Remap every PFN that points at the duplicate.
                let dup_shares = self.frames.get(&dup.0).map_or(0, |f| f.share_count);
                for p2m in self.p2m.values_mut() {
                    for target in p2m.map.values_mut() {
                        if *target == *dup {
                            *target = canonical;
                        }
                    }
                }
                if let Some(c) = self.frames.get_mut(&canonical.0) {
                    c.share_count += dup_shares;
                }
                self.frames.remove(&dup.0);
                self.free_count += 1;
                freed += 1;
            }
        }
        freed
    }

    /// Number of frames currently shared by more than one mapping.
    pub fn shared_frames(&self) -> u64 {
        self.frames.values().filter(|f| f.share_count > 1).count() as u64
    }

    /// Moves ownership of the frame at (`from`, `pfn`) to `to`, removing
    /// it from `from`'s pseudo-physical space and appending it to `to`'s
    /// (grant-transfer / page-flipping support). Returns the PFN the
    /// frame receives in `to`'s space.
    ///
    /// Shared or mapped frames cannot be transferred.
    pub fn transfer_frame(&mut self, from: DomId, pfn: Pfn, to: DomId) -> HvResult<Pfn> {
        let mfn = self.translate(from, pfn)?;
        {
            let f = self.frames.get(&mfn.0).ok_or(MemError::BadMfn(mfn.0))?;
            if f.share_count > 1 || f.grant_mappings > 0 || f.foreign_mappings > 0 {
                return Err(MemError::FrameBusy(mfn.0).into());
            }
        }
        // Detach from the source space.
        let src = self.p2m.get_mut(&from).ok_or(MemError::BadPfn(pfn.0))?;
        src.map.remove(&pfn.0);
        // Attach to the destination space.
        let dst = self.p2m.entry(to).or_default();
        let new_pfn = Pfn(dst.next_pfn);
        dst.map.insert(dst.next_pfn, mfn);
        dst.next_pfn += 1;
        if let Some(f) = self.frames.get_mut(&mfn.0) {
            f.owner = to;
            f.dirty_since_snapshot = true;
        }
        Ok(new_pfn)
    }

    /// Reads the logical contents of the frame at (`dom`, `pfn`).
    pub fn read(&self, dom: DomId, pfn: Pfn) -> HvResult<Vec<u8>> {
        let mfn = self.translate(dom, pfn)?;
        Ok(self
            .frames
            .get(&mfn.0)
            .ok_or(MemError::BadMfn(mfn.0))?
            .data
            .clone())
    }

    /// Writes directly by machine frame (hypervisor-internal paths).
    pub fn write_mfn(&mut self, mfn: Mfn, data: &[u8]) -> HvResult<()> {
        let frame = self.frames.get_mut(&mfn.0).ok_or(MemError::BadMfn(mfn.0))?;
        frame.data = data.to_vec();
        frame.dirty_since_snapshot = true;
        Ok(())
    }

    /// Reads directly by machine frame.
    pub fn read_mfn(&self, mfn: Mfn) -> HvResult<Vec<u8>> {
        Ok(self
            .frames
            .get(&mfn.0)
            .ok_or(MemError::BadMfn(mfn.0))?
            .data
            .clone())
    }

    /// Increments the grant-mapping count of a frame.
    pub(crate) fn inc_grant_mapping(&mut self, mfn: Mfn) -> HvResult<()> {
        let f = self.frames.get_mut(&mfn.0).ok_or(MemError::BadMfn(mfn.0))?;
        f.grant_mappings += 1;
        Ok(())
    }

    /// Decrements the grant-mapping count of a frame.
    pub(crate) fn dec_grant_mapping(&mut self, mfn: Mfn) -> HvResult<()> {
        let f = self.frames.get_mut(&mfn.0).ok_or(MemError::BadMfn(mfn.0))?;
        f.grant_mappings = f.grant_mappings.saturating_sub(1);
        Ok(())
    }

    /// Increments the foreign-mapping count of a frame.
    pub(crate) fn inc_foreign_mapping(&mut self, mfn: Mfn) -> HvResult<()> {
        let f = self.frames.get_mut(&mfn.0).ok_or(MemError::BadMfn(mfn.0))?;
        f.foreign_mappings += 1;
        Ok(())
    }

    /// Number of active mappings (grant + foreign) of a frame.
    pub fn mapping_count(&self, mfn: Mfn) -> HvResult<u32> {
        let f = self.frames.get(&mfn.0).ok_or(MemError::BadMfn(mfn.0))?;
        Ok(f.grant_mappings + f.foreign_mappings)
    }

    /// Releases all frames owned by `dom`.
    ///
    /// Frames with live grant mappings are leaked deliberately (as in Xen,
    /// where a domain's memory cannot be recycled until grants are
    /// unmapped); returns the number of frames actually freed.
    pub fn release_domain(&mut self, dom: DomId) -> u64 {
        let Some(p2m) = self.p2m.remove(&dom) else {
            return 0;
        };
        let mut freed = 0;
        for (_, mfn) in p2m.map {
            if let Some(f) = self.frames.get_mut(&mfn.0) {
                if f.share_count > 1 {
                    // A deduplicated frame survives; only this mapping
                    // goes away.
                    f.share_count -= 1;
                    continue;
                }
                if f.grant_mappings == 0 && f.foreign_mappings == 0 {
                    self.frames.remove(&mfn.0);
                    freed += 1;
                }
            }
        }
        self.free_count += freed;
        freed
    }

    /// Lists the dirty frames of `dom` and clears their dirty bits
    /// (snapshot support).
    pub fn take_dirty(&mut self, dom: DomId) -> Vec<(Pfn, Mfn)> {
        let Some(p2m) = self.p2m.get(&dom) else {
            return Vec::new();
        };
        let mut dirty = Vec::new();
        for (&pfn, &mfn) in &p2m.map {
            if let Some(f) = self.frames.get(&mfn.0) {
                if f.dirty_since_snapshot {
                    dirty.push((Pfn(pfn), mfn));
                }
            }
        }
        for (_, mfn) in &dirty {
            if let Some(f) = self.frames.get_mut(&mfn.0) {
                f.dirty_since_snapshot = false;
            }
        }
        dirty.sort_by_key(|(p, _)| p.0);
        dirty
    }

    /// Iterates over `dom`'s pseudo-physical map in PFN order.
    pub fn p2m_entries(&self, dom: DomId) -> Vec<(Pfn, Mfn)> {
        let Some(p2m) = self.p2m.get(&dom) else {
            return Vec::new();
        };
        let mut v: Vec<(Pfn, Mfn)> = p2m.map.iter().map(|(&p, &m)| (Pfn(p), m)).collect();
        v.sort_by_key(|(p, _)| p.0);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::HvError;

    fn mm() -> MemoryManager {
        MemoryManager::new(1024)
    }

    #[test]
    fn populate_allocates_contiguous_pfns() {
        let mut m = mm();
        let d = DomId(1);
        let first = m.populate(d, 4).unwrap();
        assert_eq!(first, Pfn(0));
        let second = m.populate(d, 2).unwrap();
        assert_eq!(second, Pfn(4));
        assert_eq!(m.owned_frames(d), 6);
        assert_eq!(m.free_frames(), 1024 - 6);
    }

    #[test]
    fn populate_fails_when_exhausted() {
        let mut m = MemoryManager::new(8);
        let d = DomId(1);
        m.populate(d, 8).unwrap();
        let err = m.populate(d, 1).unwrap_err();
        assert!(matches!(err, HvError::Memory(MemError::OutOfFrames)));
    }

    #[test]
    fn translate_and_ownership() {
        let mut m = mm();
        let a = DomId(1);
        let b = DomId(2);
        m.populate(a, 2).unwrap();
        m.populate(b, 2).unwrap();
        let mfn_a = m.translate(a, Pfn(0)).unwrap();
        let mfn_b = m.translate(b, Pfn(0)).unwrap();
        assert_ne!(
            mfn_a, mfn_b,
            "same PFN in different domains maps to different MFNs"
        );
        assert_eq!(m.owner(mfn_a).unwrap(), a);
        assert_eq!(m.owner(mfn_b).unwrap(), b);
    }

    #[test]
    fn translate_rejects_unmapped_pfn() {
        let mut m = mm();
        m.populate(DomId(1), 1).unwrap();
        assert!(m.translate(DomId(1), Pfn(5)).is_err());
        assert!(m.translate(DomId(9), Pfn(0)).is_err());
    }

    #[test]
    fn read_write_round_trip() {
        let mut m = mm();
        let d = DomId(1);
        m.populate(d, 1).unwrap();
        m.write(d, Pfn(0), b"start-info").unwrap();
        assert_eq!(m.read(d, Pfn(0)).unwrap(), b"start-info");
    }

    #[test]
    fn oversized_write_rejected() {
        let mut m = mm();
        let d = DomId(1);
        m.populate(d, 1).unwrap();
        let big = vec![0u8; PAGE_SIZE + 1];
        assert!(m.write(d, Pfn(0), &big).is_err());
    }

    #[test]
    fn write_sets_dirty_and_take_dirty_clears() {
        let mut m = mm();
        let d = DomId(1);
        m.populate(d, 3).unwrap();
        m.write(d, Pfn(1), b"x").unwrap();
        m.write(d, Pfn(2), b"y").unwrap();
        let dirty = m.take_dirty(d);
        assert_eq!(dirty.len(), 2);
        assert_eq!(dirty[0].0, Pfn(1));
        assert!(m.take_dirty(d).is_empty(), "dirty bits cleared");
    }

    #[test]
    fn release_frees_unmapped_frames() {
        let mut m = mm();
        let d = DomId(1);
        m.populate(d, 10).unwrap();
        assert_eq!(m.release_domain(d), 10);
        assert_eq!(m.free_frames(), 1024);
        assert_eq!(m.owned_frames(d), 0);
    }

    #[test]
    fn release_leaks_granted_frames() {
        let mut m = mm();
        let d = DomId(1);
        m.populate(d, 3).unwrap();
        let mfn = m.translate(d, Pfn(0)).unwrap();
        m.inc_grant_mapping(mfn).unwrap();
        assert_eq!(m.release_domain(d), 2, "granted frame not reclaimed");
    }

    #[test]
    fn mapping_counts() {
        let mut m = mm();
        let d = DomId(1);
        m.populate(d, 1).unwrap();
        let mfn = m.translate(d, Pfn(0)).unwrap();
        assert_eq!(m.mapping_count(mfn).unwrap(), 0);
        m.inc_grant_mapping(mfn).unwrap();
        m.inc_foreign_mapping(mfn).unwrap();
        assert_eq!(m.mapping_count(mfn).unwrap(), 2);
        m.dec_grant_mapping(mfn).unwrap();
        assert_eq!(m.mapping_count(mfn).unwrap(), 1);
    }

    #[test]
    fn p2m_entries_sorted() {
        let mut m = mm();
        let d = DomId(1);
        m.populate(d, 5).unwrap();
        let entries = m.p2m_entries(d);
        assert_eq!(entries.len(), 5);
        for (i, (pfn, _)) in entries.iter().enumerate() {
            assert_eq!(pfn.0, i as u64);
        }
    }
}

#[cfg(test)]
mod sharing_tests {
    use super::*;

    /// Two domains with identical page contents.
    fn twins() -> (MemoryManager, DomId, DomId) {
        let mut m = MemoryManager::new(1024);
        let a = DomId(1);
        let b = DomId(2);
        m.populate(a, 8).unwrap();
        m.populate(b, 8).unwrap();
        for pfn in 0..4u64 {
            m.write(a, Pfn(pfn), b"common-kernel-page").unwrap();
            m.write(b, Pfn(pfn), b"common-kernel-page").unwrap();
        }
        m.write(a, Pfn(4), b"a-private").unwrap();
        m.write(b, Pfn(4), b"b-private").unwrap();
        (m, a, b)
    }

    #[test]
    fn share_identical_frees_duplicates() {
        let (mut m, a, b) = twins();
        let free_before = m.free_frames();
        let freed = m.share_identical();
        // All 8 identical pages (4 per domain) collapse onto 1 canonical
        // frame — dedup merges within a domain as well as across.
        assert_eq!(freed, 7, "eight identical pages merged to one");
        assert_eq!(m.free_frames(), free_before + 7);
        assert_eq!(m.shared_frames(), 1, "one canonical frame, shared 8 ways");
        // Both domains still read the same contents.
        for pfn in 0..4u64 {
            assert_eq!(m.read(a, Pfn(pfn)).unwrap(), b"common-kernel-page");
            assert_eq!(m.read(b, Pfn(pfn)).unwrap(), b"common-kernel-page");
        }
        // Private pages untouched.
        assert_eq!(m.read(a, Pfn(4)).unwrap(), b"a-private");
        assert_eq!(m.read(b, Pfn(4)).unwrap(), b"b-private");
    }

    #[test]
    fn write_breaks_sharing_copy_on_write() {
        let (mut m, a, b) = twins();
        m.share_identical();
        m.write(a, Pfn(0), b"a-modified").unwrap();
        assert_eq!(m.read(a, Pfn(0)).unwrap(), b"a-modified");
        assert_eq!(
            m.read(b, Pfn(0)).unwrap(),
            b"common-kernel-page",
            "the peer's view is never affected"
        );
    }

    #[test]
    fn exclusive_mfn_on_private_frame_is_identity() {
        let (mut m, a, _) = twins();
        let before = m.translate(a, Pfn(4)).unwrap();
        let after = m.exclusive_mfn(a, Pfn(4)).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn exclusive_mfn_on_shared_frame_allocates() {
        let (mut m, a, b) = twins();
        m.share_identical();
        let shared = m.translate(a, Pfn(1)).unwrap();
        assert_eq!(shared, m.translate(b, Pfn(1)).unwrap());
        let private = m.exclusive_mfn(a, Pfn(1)).unwrap();
        assert_ne!(private, shared);
        assert_eq!(m.translate(a, Pfn(1)).unwrap(), private);
        assert_eq!(m.translate(b, Pfn(1)).unwrap(), shared);
        // Contents preserved.
        assert_eq!(m.read(a, Pfn(1)).unwrap(), b"common-kernel-page");
    }

    #[test]
    fn release_domain_keeps_shared_frames_alive() {
        let (mut m, a, b) = twins();
        m.share_identical();
        m.release_domain(a);
        // B still reads its pages (the canonical frame lost only a's
        // four references; b's four remain).
        for pfn in 0..4u64 {
            assert_eq!(m.read(b, Pfn(pfn)).unwrap(), b"common-kernel-page");
        }
        assert_eq!(m.shared_frames(), 1, "b's four PFNs still share the frame");
        // Writes by b now CoW-break down to exclusivity one by one.
        for pfn in 0..4u64 {
            m.write(b, Pfn(pfn), b"rewritten").unwrap();
        }
        assert_eq!(m.shared_frames(), 0);
    }

    #[test]
    fn granted_frames_are_not_dedup_candidates() {
        let (mut m, a, _) = twins();
        let mfn = m.translate(a, Pfn(0)).unwrap();
        m.inc_grant_mapping(mfn).unwrap();
        let freed = m.share_identical();
        // Pfn(0) of a is pinned by the grant; the remaining 7 identical
        // pages still merge onto one canonical frame.
        assert_eq!(freed, 6);
    }

    #[test]
    fn empty_pages_are_not_merged() {
        let mut m = MemoryManager::new(64);
        m.populate(DomId(1), 4).unwrap();
        m.populate(DomId(2), 4).unwrap();
        assert_eq!(
            m.share_identical(),
            0,
            "zero pages carry no content to merge"
        );
    }

    #[test]
    fn repeated_dedup_is_idempotent() {
        let (mut m, _, _) = twins();
        assert_eq!(m.share_identical(), 7);
        assert_eq!(m.share_identical(), 0);
    }
}

#[cfg(test)]
mod sharing_proptests {
    use super::*;
    use xoar_sim::prop::Runner;

    /// Writes through either domain after page sharing never leak into
    /// the other domain's view (copy-on-write isolation).
    #[test]
    fn cow_isolation() {
        Runner::cases(64).run("CoW isolation", |g| {
            let writes = g.vec(0..40, |g| (g.u8(0..2), g.u64(0..6), g.u8(0..4)));
            let mut m = MemoryManager::new(256);
            let a = DomId(1);
            let b = DomId(2);
            m.populate(a, 6).unwrap();
            m.populate(b, 6).unwrap();
            // Identical baseline everywhere.
            for pfn in 0..6u64 {
                m.write(a, Pfn(pfn), b"base").unwrap();
                m.write(b, Pfn(pfn), b"base").unwrap();
            }
            m.share_identical();
            // Shadow state per domain.
            let mut shadow = std::collections::HashMap::new();
            for (who, pfn, val) in writes {
                let dom = if who == 0 { a } else { b };
                let data = vec![val; 8];
                m.write(dom, Pfn(pfn), &data).unwrap();
                shadow.insert((dom, pfn), data);
            }
            for dom in [a, b] {
                for pfn in 0..6u64 {
                    let expect = shadow
                        .get(&(dom, pfn))
                        .cloned()
                        .unwrap_or_else(|| b"base".to_vec());
                    assert_eq!(m.read(dom, Pfn(pfn)).unwrap(), expect);
                }
            }
        });
    }
}
