//! Machine memory: frames, ownership, and pseudo-physical mappings.
//!
//! The hypervisor owns all machine memory and accounts for every 4 KiB
//! frame: which domain owns it, whether it is currently granted or foreign
//! mapped, and (for the snapshot subsystem) whether it has been written
//! since the last snapshot.
//!
//! Guests see *pseudo-physical* frame numbers ([`Pfn`]) which the
//! hypervisor translates to *machine* frame numbers ([`Mfn`]); Xoar's
//! security argument rests on the fact that only specific, whitelisted
//! domains may establish mappings of frames they do not own.
//!
//! Frame *contents* are modelled lazily: a frame holds a shared,
//! immutable page body ([`PageRef`]) capped at [`PAGE_SIZE`], so
//! simulating a multi-gigabyte guest does not consume gigabytes of host
//! memory, and `read`/dedup/copy-on-write move reference counts instead
//! of bytes.
//!
//! # Data-path structures
//!
//! Three structures keep the hot paths (density dedup, CoW breaking,
//! snapshot rollback) proportional to the entries they touch rather than
//! to total machine memory:
//!
//! 1. **Shared page bodies.** [`FrameInfo::data`] is an `Rc<[u8]>`
//!    handle ([`PageRef`]); `read`/`read_mfn` return clones of the
//!    handle and a CoW break copies a pointer, not a page.
//! 2. **Reverse index.** Each frame carries its small list of `(dom,
//!    pfn)` mappers inline ([`FrameInfo::refs`]), maintained
//!    incrementally by every translation-mutating operation (populate,
//!    CoW break, transfer, dedup, release) — so remapping a
//!    deduplicated frame touches only its actual mappers, and reaching
//!    a frame's mappers is the same dense-array access that reaches the
//!    frame itself (no side hash table; the snapshot-fork stamp path
//!    allocates frames at full batch speed).
//! 3. **Lazy content hashing (dirty-epoch).** Every non-empty frame
//!    body carries an FNV-1a hash indexed `hash -> mfns`, but the hash
//!    is *not* recomputed on the write path: a write stores the body,
//!    marks the hash stale, and pushes the frame onto a rehash queue.
//!    [`MemoryManager::materialize_hashes`] drains the queue in one
//!    ascending-MFN sweep at the points that consume hashes — dedup
//!    ([`MemoryManager::share_identical`], dedup-on-write), template
//!    seal, snapshot freeze, and [`MemoryManager::verify_integrity`] —
//!    bumping a generation counter per pass. Tiny bodies (≤
//!    [`INLINE_HASH_MAX`] bytes: ring slots, control records) hash
//!    inline, where deferral would cost more than the hash; the
//!    canonical zero page ([`PageRef::zero_page`]) and the empty page
//!    carry precomputed constant hashes ([`ZERO_PAGE_HASH`],
//!    [`EMPTY_HASH`]), so the dominant page bodies at density scale are
//!    never hashed at all. `share_identical` confirms hash groups with
//!    byte equality over a sharded sweep of the dense frame table.
//! 4. **Dirty bitmap + frozen baselines.** Dirty-page candidates live in
//!    a two-level bitmap per domain (the event-channel `PendingBitmap`
//!    construction applied to PFNs), so [`MemoryManager::take_dirty`]
//!    walks only set words. [`MemoryManager::freeze`] arms a lazy
//!    copy-on-write snapshot: nothing is copied at freeze time, and the
//!    first post-freeze mutation of a page records its pre-image handle
//!    (an `Rc` clone, not bytes) in the domain's [`FrozenImage`] so
//!    [`MemoryManager::rollback_frozen`] can restore exactly the dirty
//!    pages.
//!
//! All four are redundant views of the p2m + frame tables; they carry
//! no independent state, so determinism is unaffected (the canonical
//! frame of a dedup group is still the lowest MFN, and all per-group
//! merges commute). [`MemoryManager::check_consistency`] recomputes the
//! shadow model from scratch and is exercised by the interleaving
//! property tests.

use std::collections::HashMap;

use crate::fasthash::FastMap;
use std::fmt;
use std::ops::Deref;
use std::rc::Rc;

use crate::domain::DomId;
use crate::error::{HvResult, MemError};

/// Size of a page in bytes.
pub const PAGE_SIZE: usize = 4096;

/// A machine frame number (host-physical).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Mfn(pub u64);

xoar_codec::impl_json_newtype!(Mfn(u64));

impl fmt::Display for Mfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mfn:{:#x}", self.0)
    }
}

/// A pseudo-physical frame number (guest-physical).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pfn(pub u64);

xoar_codec::impl_json_newtype!(Pfn(u64));

impl fmt::Display for Pfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pfn:{:#x}", self.0)
    }
}

/// 64-bit FNV-1a content hash of a page body (in-tree, no dependencies).
///
/// `const` so the hashes of the two canonical bodies ([`EMPTY_HASH`],
/// [`ZERO_PAGE_HASH`]) are compile-time constants — a zero-fill write
/// never runs this loop at all.
pub const fn content_hash(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut i = 0;
    while i < data.len() {
        h ^= data[i] as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        i += 1;
    }
    h
}

/// Content hash of the empty (never-written, logically zero) page body.
pub const EMPTY_HASH: u64 = content_hash(&[]);

/// Content hash of the canonical all-zero page ([`PageRef::zero_page`]).
pub const ZERO_PAGE_HASH: u64 = content_hash(&[0u8; PAGE_SIZE]);

/// Bodies at most this long are hashed inline on the write path (ring
/// slots, blk sectors, control records): the FNV loop over a few dozen
/// bytes is cheaper than a rehash-queue round trip, and keeping tiny
/// control writes out of the queue keeps the materialization sweep
/// proportional to bulk data written.
pub const INLINE_HASH_MAX: usize = 64;

/// Shard count (power of two) for the dedup sweep: candidate
/// Cap on dedup shard-count bits. The sweep partitions `(hash, mfn)`
/// pairs by their top hash bits via a counting-sort pass, sizing the
/// shard count to roughly one-eighth of the candidate count (up to
/// `2^DEDUP_SHARD_BITS`), so each per-shard sort touches a handful of
/// candidates even at 50k-frame fleet scale while a small fleet pays
/// for only a small counting table. The result is deterministic
/// because the shards partition the hash space (a hash group never
/// straddles shards).
const DEDUP_SHARD_BITS: u32 = 16;

/// Whether `data` is entirely zero bytes (u64-chunked, early-exit — a
/// body with any early non-zero byte bails in the first few chunks).
fn is_all_zero(data: &[u8]) -> bool {
    let (chunks, tail) = data.as_chunks::<8>();
    chunks.iter().all(|c| u64::from_ne_bytes(*c) == 0) && tail.iter().all(|&b| b == 0)
}

/// A cheap, shared handle to an immutable page body.
///
/// Reading a page returns a `PageRef` instead of a copied `Vec<u8>`:
/// cloning the handle bumps a reference count. The handle dereferences
/// to `[u8]` and compares equal to byte slices, arrays, and `Vec<u8>`,
/// so existing callers keep working unchanged.
#[derive(Clone, Eq)]
pub struct PageRef(Rc<[u8]>);

impl PageRef {
    /// Wraps a byte slice into a shared page body (one copy, here only).
    pub fn new(data: &[u8]) -> Self {
        PageRef(Rc::from(data))
    }

    /// The empty (zero-filled, never written) page.
    ///
    /// Hands out clones of one per-thread allocation: populate and the
    /// clone-stamp path mint empty pages in bulk, and a refcount bump
    /// beats a fresh `Rc` each time. Empty pages are never deduplicated
    /// or compared by identity, so the sharing is unobservable.
    pub fn empty() -> Self {
        thread_local! {
            static EMPTY: PageRef = PageRef(Rc::from(&[][..]));
        }
        EMPTY.with(|p| p.clone())
    }

    /// The canonical all-zero page: 4 KiB of zero bytes behind one
    /// per-thread allocation, carrying the precomputed
    /// [`ZERO_PAGE_HASH`].
    ///
    /// Zero-filled frames are the dominant page body at density scale
    /// (guests zero pages long before they fill them), so a zero-fill
    /// write costs a refcount bump instead of a 4 KiB hash + copy. The
    /// canonical page is byte-equal to any freshly-built zero body, so
    /// the interning is unobservable to readers and dedup.
    pub fn zero_page() -> Self {
        thread_local! {
            static ZERO: PageRef = PageRef(Rc::from(&[0u8; PAGE_SIZE][..]));
        }
        ZERO.with(|p| p.clone())
    }

    /// Whether this handle is the canonical zero page (identity, not a
    /// byte scan).
    pub fn is_canonical_zero(&self) -> bool {
        PageRef::ptr_eq(self, &PageRef::zero_page())
    }

    /// Borrows the page bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Copies the page bytes out (compatibility shim for callers that
    /// genuinely need an owned `Vec<u8>`).
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }

    /// Whether two handles share the same underlying allocation.
    pub fn ptr_eq(a: &PageRef, b: &PageRef) -> bool {
        Rc::ptr_eq(&a.0, &b.0)
    }
}

impl Default for PageRef {
    fn default() -> Self {
        PageRef::empty()
    }
}

impl Deref for PageRef {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for PageRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.0, f)
    }
}

impl PartialEq for PageRef {
    fn eq(&self, other: &Self) -> bool {
        Rc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl std::hash::Hash for PageRef {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state)
    }
}

impl PartialEq<[u8]> for PageRef {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&[u8]> for PageRef {
    fn eq(&self, other: &&[u8]) -> bool {
        &*self.0 == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for PageRef {
    fn eq(&self, other: &[u8; N]) -> bool {
        &*self.0 == &other[..]
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for PageRef {
    fn eq(&self, other: &&[u8; N]) -> bool {
        &*self.0 == &other[..]
    }
}

impl PartialEq<Vec<u8>> for PageRef {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &*self.0 == other.as_slice()
    }
}

impl PartialEq<PageRef> for Vec<u8> {
    fn eq(&self, other: &PageRef) -> bool {
        self.as_slice() == &*other.0
    }
}

impl From<&[u8]> for PageRef {
    fn from(data: &[u8]) -> Self {
        PageRef::new(data)
    }
}

impl From<Vec<u8>> for PageRef {
    fn from(data: Vec<u8>) -> Self {
        PageRef(Rc::from(data.into_boxed_slice()))
    }
}

/// How many reverse-index entries are stored inline before spilling to
/// the heap. Almost every frame is mapped exactly once; deduplicated
/// kernel pages are the exception.
const RMAP_INLINE: usize = 2;

/// A tiny inline-first vector of `(dom, pfn)` mappers (a hand-rolled
/// smallvec: no external crates).
#[derive(Debug, Clone)]
enum RefList {
    Inline {
        len: u8,
        slots: [(DomId, u64); RMAP_INLINE],
    },
    Heap(Vec<(DomId, u64)>),
}

impl Default for RefList {
    fn default() -> Self {
        RefList::Inline {
            len: 0,
            slots: [(DomId(0), 0); RMAP_INLINE],
        }
    }
}

impl RefList {
    fn one(dom: DomId, pfn: u64) -> Self {
        let mut l = RefList::default();
        l.push(dom, pfn);
        l
    }

    fn len(&self) -> usize {
        match self {
            RefList::Inline { len, .. } => *len as usize,
            RefList::Heap(v) => v.len(),
        }
    }

    fn as_slice(&self) -> &[(DomId, u64)] {
        match self {
            RefList::Inline { len, slots } => &slots[..*len as usize],
            RefList::Heap(v) => v,
        }
    }

    fn push(&mut self, dom: DomId, pfn: u64) {
        match self {
            RefList::Inline { len, slots } => {
                if (*len as usize) < RMAP_INLINE {
                    slots[*len as usize] = (dom, pfn);
                    *len += 1;
                } else {
                    let mut v = slots.to_vec();
                    v.push((dom, pfn));
                    *self = RefList::Heap(v);
                }
            }
            RefList::Heap(v) => v.push((dom, pfn)),
        }
    }

    /// Appends every entry of `extra`, spilling to the heap at most
    /// once (a bulk dedup merge would otherwise pay one spill plus a
    /// growth reallocation per moved mapper).
    fn extend_from(&mut self, extra: &[(DomId, u64)]) {
        match self {
            RefList::Inline { len, slots } => {
                let n = *len as usize;
                if n + extra.len() <= RMAP_INLINE {
                    for (i, &e) in extra.iter().enumerate() {
                        slots[n + i] = e;
                    }
                    *len += extra.len() as u8;
                } else {
                    let mut v = Vec::with_capacity(n + extra.len());
                    v.extend_from_slice(&slots[..n]);
                    v.extend_from_slice(extra);
                    *self = RefList::Heap(v);
                }
            }
            RefList::Heap(v) => v.extend_from_slice(extra),
        }
    }

    /// Removes the first occurrence of `(dom, pfn)`, preserving the
    /// order of the remaining entries (deterministic).
    fn remove(&mut self, dom: DomId, pfn: u64) -> bool {
        match self {
            RefList::Inline { len, slots } => {
                let n = *len as usize;
                for i in 0..n {
                    if slots[i] == (dom, pfn) {
                        for j in i..n - 1 {
                            slots[j] = slots[j + 1];
                        }
                        *len -= 1;
                        return true;
                    }
                }
                false
            }
            RefList::Heap(v) => {
                if let Some(i) = v.iter().position(|&e| e == (dom, pfn)) {
                    v.remove(i);
                    true
                } else {
                    false
                }
            }
        }
    }
}

/// Two-level dirty bitmap: one bit per PFN plus a selector layer with
/// one bit per nonzero word — the event-channel `PendingBitmap`
/// construction applied to dirty-page tracking, so draining the dirty
/// set walks only the words the selectors say are live.
///
/// Guest PFNs are dense and allocated from zero, so the word vector
/// stays proportional to the domain's address-space size; clearing via
/// [`DirtyBitmap::drain_set_bits`] keeps the allocation for the next
/// snapshot epoch (no per-rollback reallocation).
#[derive(Debug, Clone, Default)]
struct DirtyBitmap {
    /// Level 2: bit `pfn % 64` of `words[pfn / 64]` ⇔ pfn dirty.
    words: Vec<u64>,
    /// Level 1: bit `w % 64` of `selectors[w / 64]` ⇔ `words[w] != 0`.
    selectors: Vec<u64>,
    /// Cached popcount over `words`.
    count: usize,
}

impl DirtyBitmap {
    /// Sets the bit for `pfn`; returns whether it was previously clear.
    fn set(&mut self, pfn: u64) -> bool {
        let w = (pfn / 64) as usize;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let bit = 1u64 << (pfn % 64);
        if self.words[w] & bit != 0 {
            return false;
        }
        self.words[w] |= bit;
        let s = w / 64;
        if s >= self.selectors.len() {
            self.selectors.resize(s + 1, 0);
        }
        self.selectors[s] |= 1u64 << (w % 64);
        self.count += 1;
        true
    }

    /// Whether the bit for `pfn` is set.
    fn contains(&self, pfn: u64) -> bool {
        self.words
            .get((pfn / 64) as usize)
            .is_some_and(|w| w & (1u64 << (pfn % 64)) != 0)
    }

    fn is_empty(&self) -> bool {
        self.count == 0
    }

    fn len(&self) -> usize {
        self.count
    }

    /// Clears every set bit in ascending PFN order, invoking `f` per
    /// PFN. O(set words), not O(address space).
    fn drain_set_bits(&mut self, mut f: impl FnMut(u64)) {
        for s in 0..self.selectors.len() {
            while self.selectors[s] != 0 {
                let w = s * 64 + self.selectors[s].trailing_zeros() as usize;
                let mut word = self.words[w];
                while word != 0 {
                    let b = word.trailing_zeros();
                    f(w as u64 * 64 + b as u64);
                    word &= word - 1;
                }
                self.words[w] = 0;
                self.selectors[s] &= self.selectors[s] - 1;
            }
        }
        self.count = 0;
    }
}

/// The lazily-captured snapshot baseline of a frozen domain.
///
/// [`MemoryManager::freeze`] records only the address-space watermark;
/// page pre-images are captured copy-on-write by the first mutation that
/// would change the domain's view of a page ([`MemoryManager`] capture
/// choke points: frame-body replacement, dedup remap, CoW break, dedup
/// merge onto a dirty canonical frame). A captured entry is an `Rc`
/// handle clone — freezing and capturing never copy page bytes.
#[derive(Debug, Clone, Default)]
struct FrozenImage {
    /// `pfn -> page body at freeze time`, first-touch captured.
    baseline: FastMap<u64, PageRef>,
    /// `next_pfn` at freeze time. PFNs are allocated monotonically and
    /// never reused, so `pfn < watermark` ⇔ the PFN existed at freeze;
    /// younger PFNs roll back to the empty page, exactly as the eager
    /// image (which never contained them) restored.
    watermark: u64,
    /// Pages mapped at freeze time (the eager image's `page_count()`).
    page_count: u64,
}

/// Per-frame metadata.
#[derive(Debug, Clone)]
struct FrameInfo {
    owner: DomId,
    /// Number of active grant mappings of this frame.
    grant_mappings: u32,
    /// Number of active foreign mappings of this frame.
    foreign_mappings: u32,
    /// Dirty since the owner's last snapshot (CoW tracking).
    dirty_since_snapshot: bool,
    /// Logical contents (at most one page; empty means zero-filled).
    data: PageRef,
    /// FNV-1a hash of `data` — valid only while `hash_ok` is set.
    hash: u64,
    /// Whether `hash` matches `data` (the dirty-epoch lazy-hash flag).
    /// A bulk write clears this and queues the frame for the next
    /// materialization sweep instead of hashing inline; a stale frame
    /// is never present in the content-hash index.
    hash_ok: bool,
    /// Reverse index: the `(dom, pfn)` p2m entries referencing this
    /// frame. Living inside the frame slot, the reverse index costs one
    /// dense-array access wherever the old side-table cost a hash probe
    /// — the difference the snapshot-fork stamp path is built around. A
    /// live frame with no referents is legal (grant-pinned frames leaked
    /// by a dying domain).
    refs: RefList,
}

/// Hole marker in [`P2m::dense`] (never a real MFN — frame numbers are
/// allocated monotonically from a small base and the model never
/// approaches `u64::MAX`).
const NO_MFN: u64 = u64::MAX;

/// Per-domain pseudo-physical address space: `Pfn -> Mfn`.
///
/// Mappings live in a dense PFN-indexed window plus a spill map for
/// PFNs beyond it. `populate` and `migrate` hand out PFNs contiguously
/// from zero, so an ordinary guest's whole address space is the dense
/// window and a translate is one bounds-checked array load — which is
/// also what makes the fleet-scale dedup sweep's p2m rewrites array
/// stores instead of hash-map probes. A fresh clone starts with an
/// *empty* window and a high `next_pfn` watermark, so its scattered
/// privatised PFNs land in the spill map (exactly the sparse shape a
/// dense window would waste memory on). The window grows only by
/// appending one slot at a time — never by jumping to a far PFN — so a
/// single outlying mapping can never stretch it thin.
#[derive(Debug, Clone, Default)]
struct P2m {
    /// Dense window: slot `p` holds the mapping for PFN `p`, or
    /// [`NO_MFN`] for a hole.
    dense: Vec<u64>,
    /// Mappings whose PFN lies at or beyond the window's end.
    spill: FastMap<u64, Mfn>,
    /// Live mapping count across both stores.
    len: usize,
    next_pfn: u64,
}

impl P2m {
    /// Number of live mappings.
    fn len(&self) -> usize {
        self.len
    }

    /// Looks up the mapping for `pfn`.
    fn get(&self, pfn: u64) -> Option<Mfn> {
        match self.dense.get(pfn as usize) {
            Some(&m) if m != NO_MFN => Some(Mfn(m)),
            Some(_) => None,
            None => self.spill.get(&pfn).copied(),
        }
    }

    /// Whether `pfn` is mapped.
    fn contains(&self, pfn: u64) -> bool {
        self.get(pfn).is_some()
    }

    /// Inserts or replaces the mapping for `pfn`.
    fn insert(&mut self, pfn: u64, mfn: Mfn) {
        let i = pfn as usize;
        if i < self.dense.len() {
            if self.dense[i] == NO_MFN {
                self.len += 1;
            }
            self.dense[i] = mfn.0;
        } else if i == self.dense.len() {
            // Append growth. The PFN may have spilled before the window
            // reached it; migrating it here keeps the invariant that
            // spill keys lie beyond the window's end.
            if self.spill.is_empty() || self.spill.remove(&pfn).is_none() {
                self.len += 1;
            }
            self.dense.push(mfn.0);
        } else if self.spill.insert(pfn, mfn).is_none() {
            self.len += 1;
        }
    }

    /// Removes and returns the mapping for `pfn`.
    fn remove(&mut self, pfn: u64) -> Option<Mfn> {
        match self.dense.get_mut(pfn as usize) {
            Some(m) if *m != NO_MFN => {
                self.len -= 1;
                Some(Mfn(std::mem::replace(m, NO_MFN)))
            }
            Some(_) => None,
            None => {
                let out = self.spill.remove(&pfn);
                if out.is_some() {
                    self.len -= 1;
                }
                out
            }
        }
    }

    /// Iterates over all mappings: the dense window in PFN order, then
    /// the spill entries in map order.
    fn entries(&self) -> impl Iterator<Item = (u64, Mfn)> + '_ {
        self.dense
            .iter()
            .enumerate()
            .filter(|&(_, &m)| m != NO_MFN)
            .map(|(p, &m)| (p as u64, Mfn(m)))
            .chain(self.spill.iter().map(|(&p, &m)| (p, m)))
    }

    /// Consumes the space, yielding all mappings.
    fn into_entries(self) -> impl Iterator<Item = (u64, Mfn)> {
        self.dense
            .into_iter()
            .enumerate()
            .filter(|&(_, m)| m != NO_MFN)
            .map(|(p, m)| (p as u64, Mfn(m)))
            .chain(self.spill)
    }
}

/// Bookkeeping for a sealed clone template (snapshot-fork creation).
///
/// A template is a frozen, write-protected domain whose frames back any
/// number of clones. Clones hold an *empty* p2m that falls through to
/// the template's on translation misses, so stamping a clone allocates
/// no frames and touches no rmap entries; a clone's first write to a
/// page breaks the aliasing exactly like a CoW break.
#[derive(Debug, Clone)]
struct TemplateInfo {
    /// Live clones currently backed by this template.
    clones: u64,
    /// Pages in the template's p2m at seal time.
    page_count: u64,
    /// `next_pfn` at seal time; clones allocate their own PFNs above it
    /// so an own-map entry below the watermark is always a CoW break.
    watermark: u64,
}

/// The dense frame table: per-frame metadata indexed by `mfn - base`,
/// as in Xen's `frame_table` array. MFNs are allocated monotonically
/// and never reused, so a frame's slot is a single bounds-checked array
/// index — the per-entry cost the batched grant path pays, with no
/// hashing. Freed frames leave a `None` slot behind (the model keeps
/// MFN allocation monotonic so observable frame numbering is unchanged
/// from the hash-table implementation).
#[derive(Debug, Clone, Default)]
struct FrameTable {
    /// First valid MFN (the "firmware hole" offset).
    base: u64,
    slots: Vec<Option<FrameInfo>>,
    /// Number of live (non-`None`) slots.
    live: usize,
}

impl FrameTable {
    fn new(base: u64) -> Self {
        FrameTable {
            base,
            slots: Vec::new(),
            live: 0,
        }
    }

    #[inline]
    fn get(&self, raw: u64) -> Option<&FrameInfo> {
        let i = raw.checked_sub(self.base)? as usize;
        self.slots.get(i)?.as_ref()
    }

    #[inline]
    fn get_mut(&mut self, raw: u64) -> Option<&mut FrameInfo> {
        let i = raw.checked_sub(self.base)? as usize;
        self.slots.get_mut(i)?.as_mut()
    }

    fn insert(&mut self, raw: u64, f: FrameInfo) {
        let i = (raw - self.base) as usize;
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        if self.slots[i].replace(f).is_none() {
            self.live += 1;
        }
    }

    fn remove(&mut self, raw: u64) -> Option<FrameInfo> {
        let i = raw.checked_sub(self.base)? as usize;
        let f = self.slots.get_mut(i)?.take();
        if f.is_some() {
            self.live -= 1;
        }
        f
    }

    #[inline]
    fn contains(&self, raw: u64) -> bool {
        self.get(raw).is_some()
    }

    fn len(&self) -> usize {
        self.live
    }

    /// Live frames in ascending MFN order.
    fn iter(&self) -> impl Iterator<Item = (u64, &FrameInfo)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(move |(i, s)| s.as_ref().map(|f| (self.base + i as u64, f)))
    }
}

/// The machine-memory manager.
///
/// Tracks every allocated frame, its owner, and its mapping counts, and
/// maintains each domain's pseudo-physical map. The number of
/// pseudo-physical mappings referencing a frame (1 = exclusive; >1 =
/// deduplicated copy-on-write sharing, Difference Engine / Satori
/// style) is derived from the reverse index, so the share accounting
/// can never drift from the p2m tables.
#[derive(Debug, Clone)]
pub struct MemoryManager {
    total_frames: u64,
    next_mfn: u64,
    frames: FrameTable,
    p2m: FastMap<DomId, P2m>,
    free_count: u64,
    /// Content-hash index over non-empty frames: `hash -> mfns`.
    by_hash: FastMap<u64, Vec<u64>>,
    /// Dirty-page candidates per domain: a superset of the PFNs whose
    /// mapped frame carries a set dirty bit, so `take_dirty` is
    /// proportional to pages touched, not to domain size.
    dirty: FastMap<DomId, DirtyBitmap>,
    /// Lazy CoW snapshot baselines of frozen domains.
    frozen: FastMap<DomId, FrozenImage>,
    /// Sealed clone templates (snapshot-fork creation).
    templates: FastMap<DomId, TemplateInfo>,
    /// `clone -> template` backing link. One level only: a template is
    /// never itself a clone, so fall-through translation never chains.
    clone_of: FastMap<DomId, DomId>,
    /// Opt-in incremental dedup: merge at write time (density mode).
    dedup_on_write: bool,
    /// Cumulative frames freed by the incremental dedup path.
    dedup_write_freed: u64,
    /// Rehash queue: MFNs whose hash went stale (pushed only on the
    /// valid→stale transition, so one entry covers any number of
    /// writes). MFNs are never reused, so entries for freed or
    /// revalidated frames are simply skipped at drain time.
    stale_hashes: Vec<u64>,
    /// Dirty-epoch generation counter: bumped per materialization pass.
    rehash_epoch: u64,
    /// Cumulative frames rehashed by materialization passes.
    rehashed_frames: u64,
    /// Reused dedup-merge scratch (one bucket's member MFNs): spares
    /// the fleet-scale sweep an allocation per duplicate group.
    scratch_bucket: Vec<u64>,
    /// Reused dedup-merge scratch (one bucket's moved mappers).
    scratch_moved: Vec<(DomId, u64)>,
}

impl MemoryManager {
    /// Creates a manager for a host with `total_frames` frames of RAM.
    pub fn new(total_frames: u64) -> Self {
        MemoryManager {
            total_frames,
            next_mfn: 0x1000, // Leave a hole for "firmware", as real hosts do.
            frames: FrameTable::new(0x1000),
            p2m: FastMap::default(),
            free_count: total_frames,
            by_hash: FastMap::default(),
            dirty: FastMap::default(),
            frozen: FastMap::default(),
            templates: FastMap::default(),
            clone_of: FastMap::default(),
            dedup_on_write: false,
            dedup_write_freed: 0,
            stale_hashes: Vec::new(),
            rehash_epoch: 0,
            rehashed_frames: 0,
            scratch_bucket: Vec::new(),
            scratch_moved: Vec::new(),
        }
    }

    /// Total machine frames.
    pub fn total_frames(&self) -> u64 {
        self.total_frames
    }

    /// Frames not yet allocated to any domain.
    pub fn free_frames(&self) -> u64 {
        self.free_count
    }

    /// Number of frames owned by `dom`.
    pub fn owned_frames(&self, dom: DomId) -> u64 {
        self.p2m.get(&dom).map_or(0, |m| m.len() as u64)
    }

    /// Enables or disables incremental dedup-on-write (density mode).
    ///
    /// When enabled, a write whose contents already exist in another
    /// unpinned frame remaps the written PFN onto that frame instead of
    /// storing a duplicate — the page is recorded clean, exactly as if
    /// [`MemoryManager::share_identical`] had run immediately after the
    /// write. Intended for density-style workloads; snapshot-heavy
    /// domains should keep the default CoW write path.
    pub fn set_dedup_on_write(&mut self, on: bool) {
        self.dedup_on_write = on;
    }

    /// Whether incremental dedup-on-write is enabled.
    pub fn dedup_on_write(&self) -> bool {
        self.dedup_on_write
    }

    /// Cumulative number of duplicate frames reclaimed by the
    /// incremental dedup-on-write path.
    pub fn dedup_write_freed(&self) -> u64 {
        self.dedup_write_freed
    }

    /// Number of rehash-queue entries still covering a live, stale
    /// frame — the pending lazy-hash work. Zero after every
    /// materialization point (dedup, template seal, snapshot freeze,
    /// [`Self::verify_integrity`]).
    pub fn pending_rehash(&self) -> usize {
        self.stale_hashes
            .iter()
            .filter(|&&raw| self.frames.get(raw).is_some_and(|f| !f.hash_ok))
            .count()
    }

    /// Dirty-epoch generation counter: bumped once per materialization
    /// pass that found pending work.
    pub fn hash_epoch(&self) -> u64 {
        self.rehash_epoch
    }

    /// Cumulative number of frames rehashed by materialization passes.
    pub fn rehashed_frames(&self) -> u64 {
        self.rehashed_frames
    }

    /// Drains the rehash queue in one ascending-MFN sweep: every frame
    /// whose hash a write deferred is rehashed and re-indexed, and the
    /// dirty epoch advances. Returns the number of frames rehashed.
    /// O(1) when nothing is pending — the common case at every
    /// snapshot-freeze call site.
    pub fn materialize_hashes(&mut self) -> u64 {
        if self.stale_hashes.is_empty() {
            return 0;
        }
        let mut queue = std::mem::take(&mut self.stale_hashes);
        queue.sort_unstable();
        let mut rehashed = 0u64;
        for raw in queue.drain(..) {
            // Skip dead entries: freed frames, and frames revalidated
            // by a later known-hash write. MFNs are never reused, so an
            // entry can only describe the frame that enqueued it.
            let (h, nonempty) = match self.frames.get_mut(raw) {
                Some(f) if !f.hash_ok => {
                    let h = content_hash(&f.data);
                    f.hash = h;
                    f.hash_ok = true;
                    (h, !f.data.is_empty())
                }
                _ => continue,
            };
            if nonempty {
                self.hash_index_add(h, raw);
            }
            rehashed += 1;
        }
        self.stale_hashes = queue; // keep the allocation for the next epoch
        self.rehash_epoch += 1;
        self.rehashed_frames += rehashed;
        rehashed
    }

    /// Materializes every pending hash, then folds a deterministic
    /// fleet-wide digest over `(mfn, hash)` in ascending MFN order: two
    /// managers holding the same logical memory produce the same digest
    /// regardless of when their hashes were materialized.
    pub fn verify_integrity(&mut self) -> u64 {
        self.materialize_hashes();
        let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
        for (raw, f) in self.frames.iter() {
            digest ^= raw.rotate_left(17) ^ f.hash;
            digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
        }
        digest
    }

    /// Classifies a write body for the lazy-hash path: canonical bodies
    /// (empty, all-zero page) intern their shared allocation and
    /// constant hash, tiny bodies hash inline, and bulk bodies defer
    /// (`None`) to the next materialization sweep.
    fn classify_bytes(data: &[u8]) -> (PageRef, Option<u64>) {
        if data.is_empty() {
            (PageRef::empty(), Some(EMPTY_HASH))
        } else if data.len() <= INLINE_HASH_MAX {
            (PageRef::new(data), Some(content_hash(data)))
        } else if data.len() == PAGE_SIZE && is_all_zero(data) {
            (PageRef::zero_page(), Some(ZERO_PAGE_HASH))
        } else {
            (PageRef::new(data), None)
        }
    }

    /// [`Self::classify_bytes`] for an already-shared page handle
    /// (rollback restore, ring payload delivery): canonical pages are
    /// recognised by identity, so re-delivering a zero page or a
    /// restored pre-image handle never scans bytes.
    fn classify_page(page: &PageRef) -> Option<u64> {
        if page.is_empty() {
            Some(EMPTY_HASH)
        } else if page.len() <= INLINE_HASH_MAX {
            Some(content_hash(page))
        } else if page.is_canonical_zero() {
            Some(ZERO_PAGE_HASH)
        } else {
            None
        }
    }

    fn hash_index_add(&mut self, hash: u64, raw: u64) {
        self.by_hash.entry(hash).or_default().push(raw);
    }

    fn hash_index_remove(&mut self, hash: u64, raw: u64) {
        if let Some(v) = self.by_hash.get_mut(&hash) {
            if let Some(i) = v.iter().position(|&m| m == raw) {
                v.swap_remove(i);
            }
            if v.is_empty() {
                self.by_hash.remove(&hash);
            }
        }
    }

    fn rmap_remove(&mut self, raw: u64, dom: DomId, pfn: u64) {
        if let Some(f) = self.frames.get_mut(raw) {
            f.refs.remove(dom, pfn);
        }
    }

    fn rmap_len(&self, raw: u64) -> usize {
        self.frames.get(raw).map_or(0, |f| f.refs.len())
    }

    /// Sets a frame's dirty bit and records every current mapper as a
    /// dirty-page candidate.
    fn mark_dirty(&mut self, mfn: Mfn) {
        let Some(f) = self.frames.get_mut(mfn.0) else {
            return;
        };
        f.dirty_since_snapshot = true;
        // Cloning the RefList is allocation-free in the dominant
        // single-mapper (inline) case — the old `to_vec()` here was the
        // per-write heap allocation behind the restart fast-path tail.
        let l = f.refs.clone();
        for &(d, p) in l.as_slice() {
            self.dirty.entry(d).or_default().set(p);
        }
    }

    /// Records `data` as the frozen pre-image of (`dom`, `pfn`) if the
    /// domain is frozen, the PFN existed at freeze time, and no earlier
    /// mutation captured it already (first touch wins — it holds the
    /// freeze-time contents).
    fn capture_frozen_one(&mut self, dom: DomId, pfn: u64, data: &PageRef) {
        if let Some(img) = self.frozen.get_mut(&dom) {
            if pfn < img.watermark && !img.baseline.contains_key(&pfn) {
                img.baseline.insert(pfn, data.clone());
            }
        }
    }

    /// CoW-captures the current body of `mfn` for every frozen mapper
    /// about to observe a change. `skip` suppresses capture for the
    /// domain being rolled back: its restores must not pollute its own
    /// baseline with pre-restore contents.
    fn capture_frozen(&mut self, mfn: Mfn, skip: Option<DomId>) {
        if self.frozen.is_empty() {
            return;
        }
        let Some((l, data)) = self
            .frames
            .get(mfn.0)
            .map(|f| (f.refs.clone(), f.data.clone()))
        else {
            return;
        };
        for &(d, p) in l.as_slice() {
            if skip == Some(d) {
                continue;
            }
            self.capture_frozen_one(d, p, &data);
        }
    }

    /// Replaces a frame's body, keeping the content-hash machinery in
    /// sync via the lazy dirty-epoch discipline.
    fn set_frame_data(&mut self, mfn: Mfn, page: PageRef) -> HvResult<()> {
        let known = Self::classify_page(&page);
        self.set_frame_data_classified(mfn, page, known, None)
    }

    /// [`Self::set_frame_data`] with frozen-capture suppression for one
    /// domain (the rollback restore path).
    fn set_frame_data_skip(
        &mut self,
        mfn: Mfn,
        page: PageRef,
        skip: Option<DomId>,
    ) -> HvResult<()> {
        let known = Self::classify_page(&page);
        self.set_frame_data_classified(mfn, page, known, skip)
    }

    /// The frame-body store: installs `page`, with `known` carrying its
    /// hash if classification produced one. A deferred (`None`) hash
    /// marks the frame stale and queues it on the valid→stale
    /// transition; a stale frame is dropped from the hash index until
    /// the next materialization sweep revalidates it.
    fn set_frame_data_classified(
        &mut self,
        mfn: Mfn,
        page: PageRef,
        known: Option<u64>,
        skip: Option<DomId>,
    ) -> HvResult<()> {
        // Capture before replacement: the frozen pre-image is the body
        // this store is about to overwrite.
        self.capture_frozen(mfn, skip);
        let (old_hash, old_ok, old_nonempty) = {
            let f = self.frames.get(mfn.0).ok_or(MemError::BadMfn(mfn.0))?;
            (f.hash, f.hash_ok, !f.data.is_empty())
        };
        if old_ok && old_nonempty {
            self.hash_index_remove(old_hash, mfn.0);
        }
        let nonempty = !page.is_empty();
        let mut went_stale = false;
        {
            let f = self.frames.get_mut(mfn.0).ok_or(MemError::BadMfn(mfn.0))?;
            f.data = page;
            match known {
                Some(h) => {
                    f.hash = h;
                    f.hash_ok = true;
                }
                None => {
                    // An already-stale frame is already queued; its
                    // earlier entry covers this write too.
                    if f.hash_ok {
                        f.hash_ok = false;
                        went_stale = true;
                    }
                }
            }
        }
        if let Some(h) = known {
            if nonempty {
                self.hash_index_add(h, mfn.0);
            }
        } else if went_stale {
            self.stale_hashes.push(mfn.0);
        }
        Ok(())
    }

    /// Allocates `count` frames to `dom`, extending its pseudo-physical
    /// space contiguously. Returns the first new [`Pfn`].
    pub fn populate(&mut self, dom: DomId, count: u64) -> HvResult<Pfn> {
        if count > self.free_count {
            return Err(MemError::OutOfFrames.into());
        }
        let p2m = self.p2m.entry(dom).or_default();
        let first = Pfn(p2m.next_pfn);
        let mut new_frames = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let mfn = Mfn(self.next_mfn);
            self.next_mfn += 1;
            p2m.insert(p2m.next_pfn, mfn);
            new_frames.push((mfn, p2m.next_pfn));
            p2m.next_pfn += 1;
        }
        for (mfn, pfn) in new_frames {
            self.frames.insert(
                mfn.0,
                FrameInfo {
                    owner: dom,
                    grant_mappings: 0,
                    foreign_mappings: 0,
                    dirty_since_snapshot: false,
                    data: PageRef::empty(),
                    hash: EMPTY_HASH,
                    hash_ok: true,
                    refs: RefList::one(dom, pfn),
                },
            );
        }
        self.free_count -= count;
        Ok(first)
    }

    /// Translates a domain-local [`Pfn`] to its machine frame.
    ///
    /// A clone's own p2m holds only the pages it has privatised; a miss
    /// falls through to the backing template's map (one level — a
    /// template is never a clone), which is what makes clone creation
    /// O(1) in the template's size.
    pub fn translate(&self, dom: DomId, pfn: Pfn) -> HvResult<Mfn> {
        if let Some(m) = self.p2m.get(&dom) {
            if let Some(mfn) = m.get(pfn.0) {
                return Ok(mfn);
            }
        }
        if let Some(&tpl) = self.clone_of.get(&dom) {
            if let Some(mfn) = self.p2m.get(&tpl).and_then(|m| m.get(pfn.0)) {
                return Ok(mfn);
            }
        }
        Err(MemError::BadPfn(pfn.0).into())
    }

    /// Whether (`dom`, `pfn`) resolves through `dom`'s *own* p2m (for a
    /// clone: whether the page has been privatised).
    fn own_mapping(&self, dom: DomId, pfn: Pfn) -> bool {
        self.p2m.get(&dom).is_some_and(|m| m.contains(pfn.0))
    }

    /// Returns the owner of a machine frame.
    pub fn owner(&self, mfn: Mfn) -> HvResult<DomId> {
        self.frames
            .get(mfn.0)
            .map(|f| f.owner)
            .ok_or_else(|| MemError::BadMfn(mfn.0).into())
    }

    /// The pseudo-physical mappings currently referencing `mfn`, sorted
    /// by `(dom, pfn)` (the reverse index, read-only).
    pub fn mappers(&self, mfn: Mfn) -> Vec<(DomId, Pfn)> {
        let mut v: Vec<(DomId, Pfn)> = self
            .frames
            .get(mfn.0)
            .map(|f| {
                f.refs
                    .as_slice()
                    .iter()
                    .map(|&(d, p)| (d, Pfn(p)))
                    .collect()
            })
            .unwrap_or_default();
        v.sort_by_key(|&(d, p)| (d.0, p.0));
        v
    }

    /// Writes `data` into the frame at (`dom`, `pfn`), marking it dirty.
    ///
    /// A write to a deduplicated (shared) frame first breaks the sharing
    /// copy-on-write, so the other domains mapping the frame are never
    /// affected. Writes longer than [`PAGE_SIZE`] are rejected.
    pub fn write(&mut self, dom: DomId, pfn: Pfn, data: &[u8]) -> HvResult<()> {
        if data.len() > PAGE_SIZE {
            return Err(crate::error::HvError::InvalidArgument(format!(
                "write of {} bytes exceeds page size",
                data.len()
            )));
        }
        if self.templates.contains_key(&dom) {
            // Clones alias template frames without rmap entries, so a
            // template write could never CoW-fault on their behalf:
            // sealed templates are immutable until their last clone dies.
            return Err(crate::error::HvError::InvalidArgument(format!(
                "{dom} is a sealed template and cannot be written"
            )));
        }
        if self.dedup_on_write && !data.is_empty() && self.try_dedup_write(dom, pfn, data)? {
            return Ok(());
        }
        let (page, known) = Self::classify_bytes(data);
        let mfn = self.exclusive_mfn(dom, pfn)?;
        self.set_frame_data_classified(mfn, page, known, None)?;
        self.mark_dirty(mfn);
        Ok(())
    }

    /// Incremental dedup: if `data` already exists in an unpinned frame,
    /// remap (`dom`, `pfn`) onto the lowest such MFN (the same canonical
    /// choice `share_identical` makes) and reclaim the old frame when
    /// this was its last reference. Returns whether the write was
    /// absorbed.
    fn try_dedup_write(&mut self, dom: DomId, pfn: Pfn, data: &[u8]) -> HvResult<bool> {
        // The candidate probe below consults `by_hash`, which indexes
        // only materialized hashes; draining the queue here (usually a
        // no-op in dedup-on-write mode — absorbed writes never go
        // stale) keeps the incremental path byte-for-byte equivalent to
        // eager hashing.
        self.materialize_hashes();
        let cur = self.translate(dom, pfn)?;
        {
            let f = self.frames.get(cur.0).ok_or(MemError::BadMfn(cur.0))?;
            if f.grant_mappings > 0 || f.foreign_mappings > 0 {
                // Pinned frames keep the plain CoW write path.
                return Ok(false);
            }
        }
        let hash = content_hash(data);
        let mut canon: Option<u64> = None;
        if let Some(mfns) = self.by_hash.get(&hash) {
            for &raw in mfns {
                let Some(f) = self.frames.get(raw) else {
                    continue;
                };
                if f.grant_mappings > 0 || f.foreign_mappings > 0 {
                    continue;
                }
                if f.data.as_slice() != data {
                    continue; // Hash collision.
                }
                if canon.is_none_or(|c| raw < c) {
                    canon = Some(raw);
                }
            }
        }
        let Some(canon) = canon else {
            return Ok(false);
        };
        if canon == cur.0 {
            // Rewriting identical content to the canonical frame itself.
            return Ok(true);
        }
        // The remap is about to change (dom, pfn)'s view: preserve the
        // frozen pre-image (this path bypasses `set_frame_data`).
        if !self.frozen.is_empty() {
            if let Some(old) = self.frames.get(cur.0).map(|f| f.data.clone()) {
                self.capture_frozen_one(dom, pfn.0, &old);
            }
        }
        // Detach (dom, pfn) from its current frame.
        self.rmap_remove(cur.0, dom, pfn.0);
        if self.rmap_len(cur.0) == 0 {
            if let Some(old) = self.frames.remove(cur.0) {
                if old.hash_ok && !old.data.is_empty() {
                    self.hash_index_remove(old.hash, cur.0);
                }
                self.free_count += 1;
                self.dedup_write_freed += 1;
            }
        }
        // Attach to the canonical frame.
        if let Some(m) = self.p2m.get_mut(&dom) {
            m.insert(pfn.0, Mfn(canon));
        }
        let mut canon_dirty = false;
        if let Some(f) = self.frames.get_mut(canon) {
            f.refs.push(dom, pfn.0);
            canon_dirty = f.dirty_since_snapshot;
        }
        if canon_dirty {
            self.dirty.entry(dom).or_default().set(pfn.0);
        }
        Ok(true)
    }

    /// Resolves (`dom`, `pfn`) to a frame exclusively owned by `dom`,
    /// breaking copy-on-write sharing if necessary.
    ///
    /// Used by every path that needs a writable or exportable frame:
    /// guest writes, grant installation, and foreign mapping — a shared
    /// frame must never be granted or foreign-mapped, or the grantee
    /// would reach other domains' memory.
    pub fn exclusive_mfn(&mut self, dom: DomId, pfn: Pfn) -> HvResult<Mfn> {
        // A clone PFN still backed by the template must be privatised
        // first — and must never take the rmap-length fast path below:
        // the template's frame is rmap-single (the template is its only
        // p2m mapper) yet aliased by every clone.
        if self.clone_of.contains_key(&dom) && !self.own_mapping(dom, pfn) {
            return self.clone_break(dom, pfn);
        }
        let mfn = self.translate(dom, pfn)?;
        if self.rmap_len(mfn.0) <= 1 {
            return Ok(mfn);
        }
        if self.free_count == 0 {
            return Err(MemError::OutOfFrames.into());
        }
        // Allocate a private copy (of the handle, not the bytes) and
        // remap this domain's PFN to it.
        let (data, hash, hash_ok) = {
            let f = self.frames.get(mfn.0).ok_or(MemError::BadMfn(mfn.0))?;
            (f.data.clone(), f.hash, f.hash_ok)
        };
        // The break marks the private frame dirty without changing the
        // bytes; a frozen domain that is never written again must still
        // roll back to these contents, so capture them now.
        self.capture_frozen_one(dom, pfn.0, &data);
        let new_mfn = Mfn(self.next_mfn);
        self.next_mfn += 1;
        self.free_count -= 1;
        let nonempty = !data.is_empty();
        self.frames.insert(
            new_mfn.0,
            FrameInfo {
                owner: dom,
                grant_mappings: 0,
                foreign_mappings: 0,
                dirty_since_snapshot: true,
                data,
                hash,
                hash_ok,
                refs: RefList::one(dom, pfn.0),
            },
        );
        if hash_ok && nonempty {
            self.hash_index_add(hash, new_mfn.0);
        } else if !hash_ok {
            // The private copy inherits the stale flag; queue it so the
            // next materialization covers the new frame too.
            self.stale_hashes.push(new_mfn.0);
        }
        self.rmap_remove(mfn.0, dom, pfn.0);
        let p2m = self.p2m.get_mut(&dom).ok_or(MemError::BadPfn(pfn.0))?;
        p2m.insert(pfn.0, new_mfn);
        self.dirty.entry(dom).or_default().set(pfn.0);
        Ok(new_mfn)
    }

    /// Privatises a template-backed clone page: allocates a fresh frame
    /// holding a *handle clone* of the template's page body (no byte
    /// copy) and installs it in the clone's own p2m. The template's
    /// frame and rmap are untouched — clones never appear in the rmap
    /// of template frames.
    fn clone_break(&mut self, dom: DomId, pfn: Pfn) -> HvResult<Mfn> {
        let tpl = *self.clone_of.get(&dom).ok_or(MemError::BadPfn(pfn.0))?;
        let mfn = self.translate(tpl, pfn)?;
        if self.free_count == 0 {
            return Err(MemError::OutOfFrames.into());
        }
        let (data, hash, hash_ok) = {
            let f = self.frames.get(mfn.0).ok_or(MemError::BadMfn(mfn.0))?;
            (f.data.clone(), f.hash, f.hash_ok)
        };
        // If the clone is itself frozen (microreboot snapshot), the
        // template's bytes are the pre-image this break diverges from.
        self.capture_frozen_one(dom, pfn.0, &data);
        let new_mfn = Mfn(self.next_mfn);
        self.next_mfn += 1;
        self.free_count -= 1;
        let nonempty = !data.is_empty();
        self.frames.insert(
            new_mfn.0,
            FrameInfo {
                owner: dom,
                grant_mappings: 0,
                foreign_mappings: 0,
                dirty_since_snapshot: true,
                data,
                hash,
                hash_ok,
                refs: RefList::one(dom, pfn.0),
            },
        );
        if hash_ok && nonempty {
            self.hash_index_add(hash, new_mfn.0);
        } else if !hash_ok {
            // Template frames are materialized at seal time, so this
            // only fires for exotic re-break interleavings — but the
            // invariant (stale ⇒ queued) must hold regardless.
            self.stale_hashes.push(new_mfn.0);
        }
        let p2m = self.p2m.get_mut(&dom).ok_or(MemError::BadPfn(pfn.0))?;
        p2m.insert(pfn.0, new_mfn);
        self.dirty.entry(dom).or_default().set(pfn.0);
        Ok(new_mfn)
    }

    /// Privatises a batch of clone PFNs onto fresh zero frames, without
    /// reading the template's copies of the pages.
    ///
    /// The region stamp uses this for the I/O ring pages it re-grants:
    /// ring contents are re-initialised when the backend connects, so
    /// the stamp need not pay what per-page [`Self::clone_break`]s would
    /// — the fall-through translates into the template, the page-handle
    /// clones and the content-hash inserts (an all-zero frame is never a
    /// dedup candidate) — and the clone's p2m and dirty tables are
    /// resolved once for the whole batch. A PFN the clone already
    /// privatised yields its existing frame. Appends one [`Mfn`] per
    /// PFN, in order, to `mfns`.
    pub fn stamp_private_zero_batch(
        &mut self,
        dom: DomId,
        pfns: &[Pfn],
        mfns: &mut Vec<Mfn>,
    ) -> HvResult<()> {
        if !self.clone_of.contains_key(&dom) {
            return Err(crate::error::HvError::InvalidArgument(format!(
                "{dom} is not a clone"
            )));
        }
        mfns.reserve(pfns.len());
        let p2m = self.p2m.get_mut(&dom).ok_or(MemError::BadPfn(0))?;
        let dirty = self.dirty.entry(dom).or_default();
        for &pfn in pfns {
            // One probe decides hit-or-stamp (the hot path stamps: a
            // fresh clone's own p2m starts empty).
            if let Some(mfn) = p2m.get(pfn.0) {
                mfns.push(mfn);
                continue;
            }
            if self.free_count == 0 {
                return Err(MemError::OutOfFrames.into());
            }
            let new_mfn = Mfn(self.next_mfn);
            self.next_mfn += 1;
            self.free_count -= 1;
            self.frames.insert(
                new_mfn.0,
                FrameInfo {
                    owner: dom,
                    grant_mappings: 0,
                    foreign_mappings: 0,
                    dirty_since_snapshot: true,
                    data: PageRef::empty(),
                    hash: EMPTY_HASH,
                    hash_ok: true,
                    refs: RefList::one(dom, pfn.0),
                },
            );
            p2m.insert(pfn.0, new_mfn);
            dirty.set(pfn.0);
            mfns.push(new_mfn);
        }
        Ok(())
    }

    /// Seals `dom` as a clone template: freezes it (so its frames carry
    /// the frozen CoW exemption the analyzer recognises) and registers
    /// it write-protected. Returns the number of pages sealed.
    /// Idempotent on an already-sealed template.
    ///
    /// A clone cannot be sealed (fall-through translation is one level
    /// deep by construction), and an empty domain has nothing to fork.
    pub fn template_arm(&mut self, dom: DomId) -> HvResult<u64> {
        if let Some(info) = self.templates.get(&dom) {
            return Ok(info.page_count);
        }
        if self.clone_of.contains_key(&dom) {
            return Err(crate::error::HvError::InvalidArgument(format!(
                "{dom} is a clone and cannot be sealed as a template"
            )));
        }
        // The freeze is also the template-seal materialization point:
        // clones dedup and CoW-break against template frames, so every
        // pending hash is drained before the seal.
        let page_count = self.freeze(dom);
        if page_count == 0 {
            self.discard_frozen(dom);
            return Err(crate::error::HvError::InvalidArgument(format!(
                "{dom} has no populated memory to seal as a template"
            )));
        }
        let watermark = self.p2m.get(&dom).map_or(0, |m| m.next_pfn);
        self.templates.insert(
            dom,
            TemplateInfo {
                clones: 0,
                page_count,
                watermark,
            },
        );
        Ok(page_count)
    }

    /// Stamps out `clone`'s address space from sealed template
    /// `template`: an empty p2m whose misses fall through to the
    /// template. O(1) — no frames are reserved, no page or p2m entry is
    /// copied; the clone pays for frames one CoW break at a time.
    /// Returns the number of pages the clone sees through the template.
    pub fn clone_space(&mut self, template: DomId, clone: DomId) -> HvResult<u64> {
        let info = self.templates.get_mut(&template).ok_or_else(|| {
            crate::error::HvError::InvalidArgument(format!("{template} is not a sealed template"))
        })?;
        if self.p2m.contains_key(&clone) || self.clone_of.contains_key(&clone) {
            return Err(crate::error::HvError::InvalidArgument(format!(
                "{clone} already has an address space"
            )));
        }
        info.clones += 1;
        let watermark = info.watermark;
        let page_count = info.page_count;
        self.p2m.insert(
            clone,
            P2m {
                next_pfn: watermark,
                ..P2m::default()
            },
        );
        self.clone_of.insert(clone, template);
        Ok(page_count)
    }

    /// Whether `dom` is a sealed clone template.
    pub fn is_template(&self, dom: DomId) -> bool {
        self.templates.contains_key(&dom)
    }

    /// The template backing `dom`, if `dom` is a clone.
    pub fn template_of(&self, dom: DomId) -> Option<DomId> {
        self.clone_of.get(&dom).copied()
    }

    /// Live clones backed by template `dom` (`None` if not a template).
    pub fn template_clones(&self, dom: DomId) -> Option<u64> {
        self.templates.get(&dom).map(|i| i.clones)
    }

    /// Pages sealed into template `dom` (`None` if not a template).
    pub fn template_page_count(&self, dom: DomId) -> Option<u64> {
        self.templates.get(&dom).map(|i| i.page_count)
    }

    /// Number of pages `clone` has privatised away from its template.
    pub fn clone_broken_pages(&self, clone: DomId) -> u64 {
        let Some(&tpl) = self.clone_of.get(&clone) else {
            return 0;
        };
        let wm = self.templates.get(&tpl).map_or(0, |i| i.watermark);
        self.p2m
            .get(&clone)
            .map_or(0, |m| m.entries().filter(|&(p, _)| p < wm).count() as u64)
    }

    /// Content-based page deduplication across all domains (the
    /// memory-density feature of the paper's introduction [21, 38]).
    ///
    /// Pending hashes are materialized first; then **one** sweep of the
    /// dense frame table collects candidate `(hash, mfn)` pairs, which
    /// a counting-sort pass partitions into shards by their top hash
    /// bits, sized so a shard holds a handful of entries (see
    /// [`DEDUP_SHARD_BITS`]). Each shard is sorted and scanned for
    /// runs of equal hash independently, so the "sort" is a few
    /// comparisons over a cache-resident slice rather than an
    /// O(n log n) pass over the whole fleet. Because the shards
    /// partition the hash space a group never straddles shards, so the
    /// result is identical to one global pass (merges of distinct
    /// groups touch disjoint frames and commute).
    ///
    /// Identical, non-empty, unmapped frames are merged onto one
    /// canonical frame (the lowest MFN of each group, so the result is
    /// independent of hash-map iteration order); duplicates are freed;
    /// subsequent writes break the sharing via copy-on-write. A
    /// duplicate that is itself already shared moves its *entire*
    /// mapper set onto the canonical frame. Returns the number of
    /// frames freed.
    pub fn share_identical(&mut self) -> u64 {
        self.materialize_hashes();
        // One dense sweep collects candidates; no page bodies are
        // cloned, and no per-hash-bucket heap vectors are walked.
        let mut cands: Vec<(u64, u64)> = Vec::with_capacity(self.frames.len());
        for (raw, f) in self.frames.iter() {
            if f.grant_mappings == 0 && f.foreign_mappings == 0 && !f.data.is_empty() {
                cands.push((f.hash, raw));
            }
        }
        let bits = (cands.len() / 8)
            .next_power_of_two()
            .trailing_zeros()
            .clamp(4, DEDUP_SHARD_BITS);
        let shards = 1usize << bits;
        let shard_of = |h: u64| (h >> (64 - bits)) as usize;
        // Counting-sort partition: count per shard, prefix-sum into
        // cursors, scatter into one flat buffer. Two sequential passes
        // over `cands` beat re-walking the frame table.
        let mut counts = vec![0u32; shards + 1];
        for &(h, _) in &cands {
            counts[shard_of(h) + 1] += 1;
        }
        for s in 1..counts.len() {
            counts[s] += counts[s - 1];
        }
        let mut sorted = vec![(0u64, 0u64); cands.len()];
        let mut cursors: Vec<u32> = counts[..shards].to_vec();
        for &(h, raw) in &cands {
            let c = &mut cursors[shard_of(h)];
            sorted[*c as usize] = (h, raw);
            *c += 1;
        }
        drop(cands);
        let mut runs: Vec<(u32, u32)> = Vec::new();
        for s in 0..shards {
            let (lo, hi) = (counts[s] as usize, counts[s + 1] as usize);
            // Sort by (hash, mfn): equal-hash runs become contiguous
            // and MFN-ascending, so each run's head is its lowest MFN.
            sorted[lo..hi].sort_unstable();
            let mut i = lo;
            while i < hi {
                let mut j = i + 1;
                while j < hi && sorted[j].0 == sorted[i].0 {
                    j += 1;
                }
                if j - i >= 2 {
                    runs.push((i as u32, j as u32));
                }
                i = j;
            }
        }
        // Merge runs in ascending head-MFN order, not hash order:
        // duplicate groups are typically parallel stripes of a few
        // address spaces, so ordering by head MFN turns the otherwise
        // random frame-table accesses into a handful of sequential
        // streams the hardware prefetcher can track. Merges of
        // distinct groups touch disjoint frames and commute, so the
        // order does not affect the result.
        runs.sort_unstable_by_key(|&(i, _)| sorted[i as usize].1);
        let mut freed = 0u64;
        for &(i, j) in &runs {
            freed += self.merge_hash_run(&sorted[i as usize..j as usize]);
        }
        freed
    }

    /// Byte-equality confirm + merge for one run of equal-hash dedup
    /// candidates (MFN-ascending): splits the run into buckets of
    /// identical content (hash collisions stay separate) and merges
    /// each bucket onto its lowest MFN. Returns frames freed.
    fn merge_hash_run(&mut self, run: &[(u64, u64)]) -> u64 {
        // Fast path: every member of the run is byte-identical to the
        // first (true for all but genuine hash collisions). The bodies
        // are read once, by reference — no handle clones, no refcount
        // traffic, no bucket allocation.
        let uniform = match self.frames.get(run[0].1) {
            Some(head) => {
                let body = head.data.as_slice();
                run[1..].iter().all(|&(_, raw)| {
                    self.frames
                        .get(raw)
                        .is_some_and(|f| f.data.as_slice() == body)
                })
            }
            None => false,
        };
        if uniform {
            let mut bucket = std::mem::take(&mut self.scratch_bucket);
            bucket.clear();
            bucket.extend(run.iter().map(|&(_, raw)| raw));
            let freed = self.merge_bucket(run[0].0, &bucket);
            self.scratch_bucket = bucket;
            return freed;
        }
        // Collision path: split the run into buckets of identical
        // content. Merges happen only after bucketing, so no member is
        // evicted while the run is split.
        let mut heads: Vec<&[u8]> = Vec::with_capacity(run.len());
        let mut buckets: Vec<Vec<u64>> = Vec::new();
        for &(_, raw) in run {
            let Some(body) = self.frames.get(raw).map(|f| f.data.as_slice()) else {
                continue;
            };
            match heads.iter().position(|&h| h == body) {
                Some(i) => buckets[i].push(raw),
                None => {
                    heads.push(body);
                    buckets.push(vec![raw]);
                }
            }
        }
        drop(heads);
        let mut freed = 0u64;
        for bucket in buckets {
            if bucket.len() >= 2 {
                freed += self.merge_bucket(run[0].0, &bucket);
            }
        }
        freed
    }

    /// Moves every mapper of `bucket[1..]` (byte-identical duplicates
    /// of `bucket[0]`, MFN-ascending) onto `bucket[0]` and frees the
    /// duplicates. Canonical-frame state, the mapper transfer, and the
    /// hash-index cleanup are each paid once per bucket, not once per
    /// duplicate — this is the inner loop of the fleet-scale sweep.
    fn merge_bucket(&mut self, hash: u64, bucket: &[u64]) -> u64 {
        let canonical = bucket[0];
        let canon_dirty = self
            .frames
            .get(canonical)
            .is_some_and(|f| f.dirty_since_snapshot);
        // A mapper moved onto a dirty canonical frame becomes dirty with
        // its bytes unchanged (the merge is content-identical); a frozen
        // mapper must capture those bytes or rollback would wipe them.
        let canon_data = if canon_dirty && !self.frozen.is_empty() {
            self.frames.get(canonical).map(|f| f.data.clone())
        } else {
            None
        };
        let dups = &bucket[1..];
        let mut moved = std::mem::take(&mut self.scratch_moved);
        moved.clear();
        let mut freed = 0u64;
        for &dup in dups {
            // Every dup passed the sweep's candidate filter (alive,
            // non-empty, materialized hash), so it is hash-indexed and
            // its removal below is unconditional.
            if let Some(f) = self.frames.remove(dup) {
                moved.extend_from_slice(f.refs.as_slice());
                self.free_count += 1;
                freed += 1;
            }
        }
        for &(d, p) in &moved {
            if let Some(m) = self.p2m.get_mut(&d) {
                m.insert(p, Mfn(canonical));
            }
            if canon_dirty {
                self.dirty.entry(d).or_default().set(p);
                if let Some(ref data) = canon_data {
                    self.capture_frozen_one(d, p, data);
                }
            }
        }
        if let Some(f) = self.frames.get_mut(canonical) {
            f.refs.extend_from(&moved);
        }
        // One hash-index pass drops every freed duplicate of this hash.
        if let Some(v) = self.by_hash.get_mut(&hash) {
            v.retain(|raw| !dups.contains(raw));
        }
        self.scratch_moved = moved;
        freed
    }

    /// Number of frames currently shared by more than one mapping.
    pub fn shared_frames(&self) -> u64 {
        self.frames.iter().filter(|(_, f)| f.refs.len() > 1).count() as u64
    }

    /// Frames mapped by more than one *domain* (deduplicated CoW sharing),
    /// with the distinct mapper domains sorted per frame and the result
    /// sorted by MFN. Intra-domain aliases (one domain mapping a frame at
    /// two PFNs) are not cross-domain sharing and are excluded.
    pub fn multi_domain_frames(&self) -> Vec<(Mfn, Vec<DomId>)> {
        let mut by_mfn: FastMap<u64, Vec<DomId>> = FastMap::default();
        for (mfn, f) in self.frames.iter() {
            if f.refs.len() < 2 {
                continue;
            }
            let doms: Vec<DomId> = f.refs.as_slice().iter().map(|&(d, _)| d).collect();
            by_mfn.insert(mfn, doms);
        }
        // Template fan-out: clones alias template frames without rmap
        // entries, so surface each template frame as shared between the
        // template and every clone that has not privatised that PFN.
        for (&tpl, info) in &self.templates {
            if info.clones == 0 {
                continue;
            }
            let clones: Vec<DomId> = {
                let mut v: Vec<DomId> = self
                    .clone_of
                    .iter()
                    .filter(|&(_, &t)| t == tpl)
                    .map(|(&c, _)| c)
                    .collect();
                v.sort_by_key(|d| d.0);
                v
            };
            let Some(p2m) = self.p2m.get(&tpl) else {
                continue;
            };
            for (pfn, mfn) in p2m.entries() {
                let entry = by_mfn.entry(mfn.0).or_insert_with(|| vec![tpl]);
                for &c in &clones {
                    if !self.own_mapping(c, Pfn(pfn)) {
                        entry.push(c);
                    }
                }
            }
        }
        let mut out: Vec<(Mfn, Vec<DomId>)> = Vec::new();
        for (mfn, mut doms) in by_mfn {
            doms.sort_by_key(|d| d.0);
            doms.dedup();
            if doms.len() >= 2 {
                out.push((Mfn(mfn), doms));
            }
        }
        out.sort_by_key(|&(m, _)| m.0);
        out
    }

    /// Moves ownership of the frame at (`from`, `pfn`) to `to`, removing
    /// it from `from`'s pseudo-physical space and appending it to `to`'s
    /// (grant-transfer / page-flipping support). Returns the PFN the
    /// frame receives in `to`'s space.
    ///
    /// Shared or mapped frames cannot be transferred.
    pub fn transfer_frame(&mut self, from: DomId, pfn: Pfn, to: DomId) -> HvResult<Pfn> {
        let mfn = self.translate(from, pfn)?;
        if self.templates.contains_key(&from) || !self.own_mapping(from, pfn) {
            // Template frames back live clones and a clone's
            // fall-through PFN *is* a template frame: neither may change
            // hands.
            return Err(MemError::FrameBusy(mfn.0).into());
        }
        {
            let f = self.frames.get(mfn.0).ok_or(MemError::BadMfn(mfn.0))?;
            if self.rmap_len(mfn.0) > 1 || f.grant_mappings > 0 || f.foreign_mappings > 0 {
                return Err(MemError::FrameBusy(mfn.0).into());
            }
        }
        // Detach from the source space.
        let src = self.p2m.get_mut(&from).ok_or(MemError::BadPfn(pfn.0))?;
        src.remove(pfn.0);
        self.rmap_remove(mfn.0, from, pfn.0);
        // Attach to the destination space.
        let dst = self.p2m.entry(to).or_default();
        let new_pfn = Pfn(dst.next_pfn);
        dst.insert(dst.next_pfn, mfn);
        dst.next_pfn += 1;
        if let Some(f) = self.frames.get_mut(mfn.0) {
            f.owner = to;
            f.refs = RefList::one(to, new_pfn.0);
        }
        self.mark_dirty(mfn);
        Ok(new_pfn)
    }

    /// Reads the logical contents of the frame at (`dom`, `pfn`) as a
    /// shared handle (no byte copy).
    pub fn read(&self, dom: DomId, pfn: Pfn) -> HvResult<PageRef> {
        let mfn = self.translate(dom, pfn)?;
        self.read_mfn(mfn)
    }

    /// Writes directly by machine frame (hypervisor-internal paths).
    pub fn write_mfn(&mut self, mfn: Mfn, data: &[u8]) -> HvResult<()> {
        self.write_mfn_page(mfn, PageRef::new(data))
    }

    /// Writes a shared page body directly by machine frame without
    /// copying bytes (snapshot rollback, ring payload delivery).
    pub fn write_mfn_page(&mut self, mfn: Mfn, page: PageRef) -> HvResult<()> {
        if let Some(f) = self.frames.get(mfn.0) {
            if self.templates.contains_key(&f.owner) {
                return Err(crate::error::HvError::InvalidArgument(format!(
                    "{mfn} belongs to a sealed template and cannot be written",
                )));
            }
        }
        self.set_frame_data(mfn, page)?;
        self.mark_dirty(mfn);
        Ok(())
    }

    /// Reads directly by machine frame as a shared handle.
    pub fn read_mfn(&self, mfn: Mfn) -> HvResult<PageRef> {
        Ok(self
            .frames
            .get(mfn.0)
            .ok_or(MemError::BadMfn(mfn.0))?
            .data
            .clone())
    }

    /// Increments the grant-mapping count of a frame.
    ///
    /// Returns the bare [`MemError`] so batch paths can record a compact
    /// per-entry status without widening to [`crate::error::HvError`].
    pub(crate) fn inc_grant_mapping(&mut self, mfn: Mfn) -> Result<(), MemError> {
        let f = self.frames.get_mut(mfn.0).ok_or(MemError::BadMfn(mfn.0))?;
        f.grant_mappings += 1;
        Ok(())
    }

    /// Decrements the grant-mapping count of a frame.
    pub(crate) fn dec_grant_mapping(&mut self, mfn: Mfn) -> Result<(), MemError> {
        let f = self.frames.get_mut(mfn.0).ok_or(MemError::BadMfn(mfn.0))?;
        f.grant_mappings = f.grant_mappings.saturating_sub(1);
        Ok(())
    }

    /// Increments the foreign-mapping count of a frame.
    pub(crate) fn inc_foreign_mapping(&mut self, mfn: Mfn) -> HvResult<()> {
        let f = self.frames.get_mut(mfn.0).ok_or(MemError::BadMfn(mfn.0))?;
        f.foreign_mappings += 1;
        Ok(())
    }

    /// Number of active mappings (grant + foreign) of a frame.
    pub fn mapping_count(&self, mfn: Mfn) -> HvResult<u32> {
        let f = self.frames.get(mfn.0).ok_or(MemError::BadMfn(mfn.0))?;
        Ok(f.grant_mappings + f.foreign_mappings)
    }

    /// Releases all frames owned by `dom`.
    ///
    /// Frames with live grant mappings are leaked deliberately (as in Xen,
    /// where a domain's memory cannot be recycled until grants are
    /// unmapped); returns the number of frames actually freed.
    pub fn release_domain(&mut self, dom: DomId) -> u64 {
        if let Some(tpl) = self.clone_of.remove(&dom) {
            if let Some(info) = self.templates.get_mut(&tpl) {
                info.clones = info.clones.saturating_sub(1);
            }
        }
        self.templates.remove(&dom);
        let Some(p2m) = self.p2m.remove(&dom) else {
            return 0;
        };
        self.dirty.remove(&dom);
        self.frozen.remove(&dom);
        let mut freed = 0;
        for (pfn, mfn) in p2m.into_entries() {
            self.rmap_remove(mfn.0, dom, pfn);
            if self.rmap_len(mfn.0) > 0 {
                // A deduplicated frame survives; only this mapping goes
                // away.
                continue;
            }
            let unmapped = self
                .frames
                .get(mfn.0)
                .is_some_and(|f| f.grant_mappings == 0 && f.foreign_mappings == 0);
            if unmapped {
                if let Some(f) = self.frames.remove(mfn.0) {
                    if f.hash_ok && !f.data.is_empty() {
                        self.hash_index_remove(f.hash, mfn.0);
                    }
                    freed += 1;
                }
            }
        }
        self.free_count += freed;
        freed
    }

    /// Lists the dirty frames of `dom` and clears their dirty bits
    /// (snapshot support). Walks only the set words of the domain's
    /// dirty bitmap — proportional to the number of pages written since
    /// the last call, not to the domain's total memory.
    pub fn take_dirty(&mut self, dom: DomId) -> Vec<(Pfn, Mfn)> {
        let Some(bm) = self.dirty.get_mut(&dom) else {
            return Vec::new();
        };
        if bm.is_empty() {
            return Vec::new();
        }
        let mut dirty = Vec::with_capacity(bm.len());
        let Some(p2m) = self.p2m.get(&dom) else {
            // No address space left: discard the stale candidates.
            bm.drain_set_bits(|_| {});
            return dirty;
        };
        // Manual two-level walk (ascending PFN, the order the previous
        // sorted-scan implementation produced), filtering stale
        // candidates and clearing frame dirty bits in the same pass.
        for s in 0..bm.selectors.len() {
            while bm.selectors[s] != 0 {
                let w = s * 64 + bm.selectors[s].trailing_zeros() as usize;
                let mut word = bm.words[w];
                while word != 0 {
                    let pfn = w as u64 * 64 + word.trailing_zeros() as u64;
                    word &= word - 1;
                    // Stale candidate: the PFN was remapped away or its
                    // frame went clean under it.
                    let Some(mfn) = p2m.get(pfn) else {
                        continue;
                    };
                    let Some(f) = self.frames.get_mut(mfn.0) else {
                        continue;
                    };
                    if f.dirty_since_snapshot {
                        f.dirty_since_snapshot = false;
                        dirty.push((Pfn(pfn), mfn));
                    }
                }
                bm.words[w] = 0;
                bm.selectors[s] &= bm.selectors[s] - 1;
            }
        }
        bm.count = 0;
        dirty
    }

    /// Freezes `dom`'s memory as a lazy copy-on-write snapshot and
    /// returns the number of pages covered.
    ///
    /// Nothing is copied here: the call records the address-space
    /// watermark, clears the domain's dirty state (the new snapshot
    /// epoch), and empties the baseline. Pre-images are captured by the
    /// first post-freeze mutation of each page, so the cost is
    /// independent of how many pages the domain owns or how clean they
    /// are. Freezing an already-frozen domain replaces the snapshot.
    pub fn freeze(&mut self, dom: DomId) -> u64 {
        // Snapshot seal: materialize pending hashes so every frame the
        // frozen image can reach carries a valid content hash. O(1)
        // when nothing is pending — the common microreboot case.
        self.materialize_hashes();
        let (mut count, watermark) = self
            .p2m
            .get(&dom)
            .map_or((0, 0), |m| (m.len() as u64, m.next_pfn));
        // A clone also sees every template page it has not privatised:
        // those are snapshot-covered too (a post-freeze CoW break
        // captures the template body as the pre-image).
        if let Some(&tpl) = self.clone_of.get(&dom) {
            if let Some(tinfo) = self.templates.get(&tpl) {
                count += tinfo.page_count - self.clone_broken_pages(dom);
            }
        }
        // Open the new epoch: pre-freeze dirt must not be restored.
        let _ = self.take_dirty(dom);
        let img = self.frozen.entry(dom).or_default();
        img.baseline.clear();
        img.watermark = watermark;
        img.page_count = count;
        count
    }

    /// Whether `dom` currently holds a frozen CoW snapshot.
    pub fn is_frozen(&self, dom: DomId) -> bool {
        self.frozen.contains_key(&dom)
    }

    /// Pages covered by `dom`'s frozen snapshot (`None` if not frozen).
    pub fn frozen_page_count(&self, dom: DomId) -> Option<u64> {
        self.frozen.get(&dom).map(|i| i.page_count)
    }

    /// Number of pre-images the frozen snapshot has captured so far
    /// (`None` if not frozen). Zero on a domain that has not been
    /// written since [`Self::freeze`] — the zero-copy invariant.
    pub fn frozen_baseline_len(&self, dom: DomId) -> Option<usize> {
        self.frozen.get(&dom).map(|i| i.baseline.len())
    }

    /// Drops `dom`'s frozen snapshot without restoring anything.
    pub fn discard_frozen(&mut self, dom: DomId) {
        self.frozen.remove(&dom);
    }

    /// Rolls `dom` back to its frozen snapshot: every page dirtied since
    /// [`Self::freeze`] is restored to its captured pre-image (or the
    /// empty page for PFNs younger than the freeze), except pages for
    /// which `in_box` returns true (recovery boxes, §3.3). Returns the
    /// number of pages restored.
    ///
    /// The snapshot stays armed: the baseline persists so repeated
    /// rollbacks to the same freeze point keep working.
    pub fn rollback_frozen(
        &mut self,
        dom: DomId,
        mut in_box: impl FnMut(Pfn) -> bool,
    ) -> HvResult<u64> {
        if !self.frozen.contains_key(&dom) {
            return Err(crate::error::HvError::Snapshot(format!(
                "{dom} has no frozen snapshot to roll back to"
            )));
        }
        let dirty = self.take_dirty(dom);
        let mut restored = 0u64;
        for (pfn, mfn) in dirty {
            if in_box(pfn) {
                continue;
            }
            let page = match self.frozen.get(&dom) {
                Some(img) if pfn.0 < img.watermark => {
                    img.baseline.get(&pfn.0).cloned().unwrap_or_default()
                }
                _ => PageRef::empty(),
            };
            // Suppress capture for `dom` itself: the restore must not
            // record pre-restore contents as the frozen baseline. Other
            // frozen domains sharing the frame still capture normally.
            self.set_frame_data_skip(mfn, page, Some(dom))?;
            self.mark_dirty(mfn);
            restored += 1;
        }
        // The restores themselves re-dirtied the pages; clear that so
        // the next rollback starts from a clean epoch.
        let _ = self.take_dirty(dom);
        Ok(restored)
    }

    /// Iterates over `dom`'s pseudo-physical map in PFN order.
    pub fn p2m_entries(&self, dom: DomId) -> Vec<(Pfn, Mfn)> {
        let Some(p2m) = self.p2m.get(&dom) else {
            return Vec::new();
        };
        let mut v: Vec<(Pfn, Mfn)> = p2m.entries().map(|(p, m)| (Pfn(p), m)).collect();
        v.sort_by_key(|(p, _)| p.0);
        v
    }

    /// Recomputes the shadow model from the p2m tables and asserts that
    /// every derived structure (reverse index, share accounting, free
    /// count, content-hash index, dirty candidates) agrees with it.
    ///
    /// Test support: exercised by the interleaving property tests.
    pub fn check_consistency(&self) -> Result<(), String> {
        // Free accounting: every live frame was debited exactly once.
        if self.free_count != self.total_frames - self.frames.len() as u64 {
            return Err(format!(
                "free_count {} != total {} - frames {}",
                self.free_count,
                self.total_frames,
                self.frames.len()
            ));
        }
        // Shadow reverse index recomputed naively from the p2m tables.
        let mut shadow: HashMap<u64, Vec<(DomId, u64)>> = HashMap::new();
        for (&dom, p2m) in &self.p2m {
            for (pfn, mfn) in p2m.entries() {
                if !self.frames.contains(mfn.0) {
                    return Err(format!("{dom} pfn {pfn} maps missing mfn {:#x}", mfn.0));
                }
                shadow.entry(mfn.0).or_default().push((dom, pfn));
            }
        }
        for (raw, f) in self.frames.iter() {
            let mut expect = shadow.remove(&raw).unwrap_or_default();
            let mut got: Vec<(DomId, u64)> = f.refs.as_slice().to_vec();
            expect.sort_by_key(|&(d, p)| (d.0, p));
            got.sort_by_key(|&(d, p)| (d.0, p));
            if expect != got {
                return Err(format!(
                    "refs for mfn {raw:#x} disagree: shadow {expect:?} vs index {got:?}"
                ));
            }
        }
        if let Some((&raw, _)) = shadow.iter().next() {
            return Err(format!("shadow maps missing frame mfn {raw:#x}"));
        }
        // Content-hash machinery under the lazy dirty-epoch discipline:
        // a materialized hash matches the bytes and is indexed iff the
        // frame is non-empty; a stale frame is never indexed and must
        // be covered by a rehash-queue entry.
        for (raw, f) in self.frames.iter() {
            if f.hash_ok {
                if f.hash != content_hash(&f.data) {
                    return Err(format!("wrong materialized hash for mfn {raw:#x}"));
                }
                let indexed = self
                    .by_hash
                    .get(&f.hash)
                    .map_or(0, |v| v.iter().filter(|&&m| m == raw).count());
                let expect = usize::from(!f.data.is_empty());
                if indexed != expect {
                    return Err(format!(
                        "mfn {raw:#x} appears {indexed} times in hash index, expected {expect}"
                    ));
                }
            } else if !self.stale_hashes.contains(&raw) {
                return Err(format!("stale mfn {raw:#x} missing from the rehash queue"));
            }
        }
        for (&h, v) in &self.by_hash {
            for &raw in v {
                let ok = self
                    .frames
                    .get(raw)
                    .is_some_and(|f| f.hash_ok && f.hash == h && !f.data.is_empty());
                if !ok {
                    return Err(format!("hash index lists stale mfn {raw:#x}"));
                }
            }
        }
        // Dirty candidates are a superset of actually-dirty mappings.
        for (&dom, p2m) in &self.p2m {
            for (pfn, mfn) in p2m.entries() {
                let is_dirty = self
                    .frames
                    .get(mfn.0)
                    .is_some_and(|f| f.dirty_since_snapshot);
                if is_dirty && !self.dirty.get(&dom).is_some_and(|s| s.contains(pfn)) {
                    return Err(format!(
                        "dirty frame mfn {:#x} mapped at {dom} pfn {pfn} has no candidate",
                        mfn.0
                    ));
                }
            }
        }
        // Frozen baselines only ever hold pre-freeze PFNs (younger PFNs
        // roll back to the empty page by construction).
        for (&dom, img) in &self.frozen {
            for &pfn in img.baseline.keys() {
                if pfn >= img.watermark {
                    return Err(format!(
                        "{dom} frozen baseline captured post-freeze pfn {pfn} (watermark {})",
                        img.watermark
                    ));
                }
            }
        }
        // Clone links: every clone points at a live, sealed, frozen
        // template, and the per-template clone counters match the links.
        let mut clone_counts: HashMap<DomId, u64> = HashMap::new();
        for (&clone, &tpl) in &self.clone_of {
            let Some(info) = self.templates.get(&tpl) else {
                return Err(format!("{clone} is a clone of unsealed {tpl}"));
            };
            if self.templates.contains_key(&clone) {
                return Err(format!("{clone} is both a clone and a template"));
            }
            if !self.frozen.contains_key(&tpl) {
                return Err(format!("template {tpl} lost its frozen snapshot"));
            }
            if let Some(m) = self.p2m.get(&clone) {
                if m.next_pfn < info.watermark {
                    return Err(format!(
                        "{clone} next_pfn {} below template watermark {}",
                        m.next_pfn, info.watermark
                    ));
                }
            }
            *clone_counts.entry(tpl).or_default() += 1;
        }
        for (&tpl, info) in &self.templates {
            let linked = clone_counts.get(&tpl).copied().unwrap_or(0);
            if info.clones != linked {
                return Err(format!(
                    "template {tpl} counts {} clones but {linked} are linked",
                    info.clones
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::HvError;

    fn mm() -> MemoryManager {
        MemoryManager::new(1024)
    }

    #[test]
    fn populate_allocates_contiguous_pfns() {
        let mut m = mm();
        let d = DomId(1);
        let first = m.populate(d, 4).unwrap();
        assert_eq!(first, Pfn(0));
        let second = m.populate(d, 2).unwrap();
        assert_eq!(second, Pfn(4));
        assert_eq!(m.owned_frames(d), 6);
        assert_eq!(m.free_frames(), 1024 - 6);
    }

    #[test]
    fn populate_fails_when_exhausted() {
        let mut m = MemoryManager::new(8);
        let d = DomId(1);
        m.populate(d, 8).unwrap();
        let err = m.populate(d, 1).unwrap_err();
        assert!(matches!(err, HvError::Memory(MemError::OutOfFrames)));
    }

    #[test]
    fn translate_and_ownership() {
        let mut m = mm();
        let a = DomId(1);
        let b = DomId(2);
        m.populate(a, 2).unwrap();
        m.populate(b, 2).unwrap();
        let mfn_a = m.translate(a, Pfn(0)).unwrap();
        let mfn_b = m.translate(b, Pfn(0)).unwrap();
        assert_ne!(
            mfn_a, mfn_b,
            "same PFN in different domains maps to different MFNs"
        );
        assert_eq!(m.owner(mfn_a).unwrap(), a);
        assert_eq!(m.owner(mfn_b).unwrap(), b);
    }

    #[test]
    fn translate_rejects_unmapped_pfn() {
        let mut m = mm();
        m.populate(DomId(1), 1).unwrap();
        assert!(m.translate(DomId(1), Pfn(5)).is_err());
        assert!(m.translate(DomId(9), Pfn(0)).is_err());
    }

    #[test]
    fn read_write_round_trip() {
        let mut m = mm();
        let d = DomId(1);
        m.populate(d, 1).unwrap();
        m.write(d, Pfn(0), b"start-info").unwrap();
        assert_eq!(m.read(d, Pfn(0)).unwrap(), b"start-info");
    }

    #[test]
    fn read_returns_shared_handle_not_copy() {
        let mut m = mm();
        let d = DomId(1);
        m.populate(d, 1).unwrap();
        m.write(d, Pfn(0), b"page-body").unwrap();
        let a = m.read(d, Pfn(0)).unwrap();
        let b = m.read(d, Pfn(0)).unwrap();
        assert!(
            PageRef::ptr_eq(&a, &b),
            "two reads share one page allocation"
        );
    }

    #[test]
    fn oversized_write_rejected() {
        let mut m = mm();
        let d = DomId(1);
        m.populate(d, 1).unwrap();
        let big = vec![0u8; PAGE_SIZE + 1];
        assert!(m.write(d, Pfn(0), &big).is_err());
    }

    #[test]
    fn write_sets_dirty_and_take_dirty_clears() {
        let mut m = mm();
        let d = DomId(1);
        m.populate(d, 3).unwrap();
        m.write(d, Pfn(1), b"x").unwrap();
        m.write(d, Pfn(2), b"y").unwrap();
        let dirty = m.take_dirty(d);
        assert_eq!(dirty.len(), 2);
        assert_eq!(dirty[0].0, Pfn(1));
        assert!(m.take_dirty(d).is_empty(), "dirty bits cleared");
    }

    #[test]
    fn release_frees_unmapped_frames() {
        let mut m = mm();
        let d = DomId(1);
        m.populate(d, 10).unwrap();
        assert_eq!(m.release_domain(d), 10);
        assert_eq!(m.free_frames(), 1024);
        assert_eq!(m.owned_frames(d), 0);
    }

    #[test]
    fn release_leaks_granted_frames() {
        let mut m = mm();
        let d = DomId(1);
        m.populate(d, 3).unwrap();
        let mfn = m.translate(d, Pfn(0)).unwrap();
        m.inc_grant_mapping(mfn).unwrap();
        assert_eq!(m.release_domain(d), 2, "granted frame not reclaimed");
    }

    #[test]
    fn mapping_counts() {
        let mut m = mm();
        let d = DomId(1);
        m.populate(d, 1).unwrap();
        let mfn = m.translate(d, Pfn(0)).unwrap();
        assert_eq!(m.mapping_count(mfn).unwrap(), 0);
        m.inc_grant_mapping(mfn).unwrap();
        m.inc_foreign_mapping(mfn).unwrap();
        assert_eq!(m.mapping_count(mfn).unwrap(), 2);
        m.dec_grant_mapping(mfn).unwrap();
        assert_eq!(m.mapping_count(mfn).unwrap(), 1);
    }

    #[test]
    fn p2m_entries_sorted() {
        let mut m = mm();
        let d = DomId(1);
        m.populate(d, 5).unwrap();
        let entries = m.p2m_entries(d);
        assert_eq!(entries.len(), 5);
        for (i, (pfn, _)) in entries.iter().enumerate() {
            assert_eq!(pfn.0, i as u64);
        }
    }

    #[test]
    fn reverse_index_tracks_mappers() {
        let mut m = mm();
        let a = DomId(1);
        let b = DomId(2);
        m.populate(a, 2).unwrap();
        m.populate(b, 2).unwrap();
        m.write(a, Pfn(0), b"same").unwrap();
        m.write(b, Pfn(0), b"same").unwrap();
        m.share_identical();
        let mfn = m.translate(a, Pfn(0)).unwrap();
        assert_eq!(m.mappers(mfn), vec![(a, Pfn(0)), (b, Pfn(0))]);
        m.write(b, Pfn(0), b"changed").unwrap();
        assert_eq!(m.mappers(mfn), vec![(a, Pfn(0))]);
        m.check_consistency().unwrap();
    }
}

#[cfg(test)]
mod sharing_tests {
    use super::*;

    /// Two domains with identical page contents.
    fn twins() -> (MemoryManager, DomId, DomId) {
        let mut m = MemoryManager::new(1024);
        let a = DomId(1);
        let b = DomId(2);
        m.populate(a, 8).unwrap();
        m.populate(b, 8).unwrap();
        for pfn in 0..4u64 {
            m.write(a, Pfn(pfn), b"common-kernel-page").unwrap();
            m.write(b, Pfn(pfn), b"common-kernel-page").unwrap();
        }
        m.write(a, Pfn(4), b"a-private").unwrap();
        m.write(b, Pfn(4), b"b-private").unwrap();
        (m, a, b)
    }

    #[test]
    fn share_identical_frees_duplicates() {
        let (mut m, a, b) = twins();
        let free_before = m.free_frames();
        let freed = m.share_identical();
        // All 8 identical pages (4 per domain) collapse onto 1 canonical
        // frame — dedup merges within a domain as well as across.
        assert_eq!(freed, 7, "eight identical pages merged to one");
        assert_eq!(m.free_frames(), free_before + 7);
        assert_eq!(m.shared_frames(), 1, "one canonical frame, shared 8 ways");
        // Both domains still read the same contents.
        for pfn in 0..4u64 {
            assert_eq!(m.read(a, Pfn(pfn)).unwrap(), b"common-kernel-page");
            assert_eq!(m.read(b, Pfn(pfn)).unwrap(), b"common-kernel-page");
        }
        // Private pages untouched.
        assert_eq!(m.read(a, Pfn(4)).unwrap(), b"a-private");
        assert_eq!(m.read(b, Pfn(4)).unwrap(), b"b-private");
        m.check_consistency().unwrap();
    }

    #[test]
    fn write_breaks_sharing_copy_on_write() {
        let (mut m, a, b) = twins();
        m.share_identical();
        m.write(a, Pfn(0), b"a-modified").unwrap();
        assert_eq!(m.read(a, Pfn(0)).unwrap(), b"a-modified");
        assert_eq!(
            m.read(b, Pfn(0)).unwrap(),
            b"common-kernel-page",
            "the peer's view is never affected"
        );
    }

    #[test]
    fn exclusive_mfn_on_private_frame_is_identity() {
        let (mut m, a, _) = twins();
        let before = m.translate(a, Pfn(4)).unwrap();
        let after = m.exclusive_mfn(a, Pfn(4)).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn exclusive_mfn_on_shared_frame_allocates() {
        let (mut m, a, b) = twins();
        m.share_identical();
        let shared = m.translate(a, Pfn(1)).unwrap();
        assert_eq!(shared, m.translate(b, Pfn(1)).unwrap());
        let private = m.exclusive_mfn(a, Pfn(1)).unwrap();
        assert_ne!(private, shared);
        assert_eq!(m.translate(a, Pfn(1)).unwrap(), private);
        assert_eq!(m.translate(b, Pfn(1)).unwrap(), shared);
        // Contents preserved.
        assert_eq!(m.read(a, Pfn(1)).unwrap(), b"common-kernel-page");
        m.check_consistency().unwrap();
    }

    #[test]
    fn cow_break_shares_the_page_body() {
        let (mut m, a, b) = twins();
        m.share_identical();
        let before = m.read(b, Pfn(1)).unwrap();
        m.exclusive_mfn(a, Pfn(1)).unwrap();
        let a_view = m.read(a, Pfn(1)).unwrap();
        assert!(
            PageRef::ptr_eq(&before, &a_view),
            "CoW break moves a handle, not bytes"
        );
    }

    #[test]
    fn release_domain_keeps_shared_frames_alive() {
        let (mut m, a, b) = twins();
        m.share_identical();
        m.release_domain(a);
        // B still reads its pages (the canonical frame lost only a's
        // four references; b's four remain).
        for pfn in 0..4u64 {
            assert_eq!(m.read(b, Pfn(pfn)).unwrap(), b"common-kernel-page");
        }
        assert_eq!(m.shared_frames(), 1, "b's four PFNs still share the frame");
        // Writes by b now CoW-break down to exclusivity one by one.
        for pfn in 0..4u64 {
            m.write(b, Pfn(pfn), b"rewritten").unwrap();
        }
        assert_eq!(m.shared_frames(), 0);
        m.check_consistency().unwrap();
    }

    #[test]
    fn granted_frames_are_not_dedup_candidates() {
        let (mut m, a, _) = twins();
        let mfn = m.translate(a, Pfn(0)).unwrap();
        m.inc_grant_mapping(mfn).unwrap();
        let freed = m.share_identical();
        // Pfn(0) of a is pinned by the grant; the remaining 7 identical
        // pages still merge onto one canonical frame.
        assert_eq!(freed, 6);
    }

    #[test]
    fn empty_pages_are_not_merged() {
        let mut m = MemoryManager::new(64);
        m.populate(DomId(1), 4).unwrap();
        m.populate(DomId(2), 4).unwrap();
        assert_eq!(
            m.share_identical(),
            0,
            "zero pages carry no content to merge"
        );
    }

    #[test]
    fn repeated_dedup_is_idempotent() {
        let (mut m, _, _) = twins();
        assert_eq!(m.share_identical(), 7);
        assert_eq!(m.share_identical(), 0);
    }

    /// Regression (share-count move semantics): a duplicate that is
    /// itself already shared must move its *full* mapper count onto the
    /// canonical frame, leaving exactly one shared frame behind.
    #[test]
    fn dedup_of_already_shared_duplicate_moves_full_count() {
        let mut m = MemoryManager::new(1024);
        let a = DomId(1);
        let b = DomId(2);
        m.populate(a, 4).unwrap();
        m.populate(b, 4).unwrap();
        // First group: a's two copies merge onto canonical S1.
        m.write(a, Pfn(0), b"glibc-text").unwrap();
        m.write(a, Pfn(1), b"glibc-text").unwrap();
        assert_eq!(m.share_identical(), 1);
        let s1 = m.translate(a, Pfn(0)).unwrap();
        // Pin S1 so the next dedup round cannot touch it, then build a
        // second shared frame S2 with the same content in domain b.
        m.inc_grant_mapping(s1).unwrap();
        m.write(b, Pfn(0), b"glibc-text").unwrap();
        m.write(b, Pfn(1), b"glibc-text").unwrap();
        assert_eq!(m.share_identical(), 1);
        let s2 = m.translate(b, Pfn(0)).unwrap();
        assert_ne!(s1, s2);
        assert_eq!(m.shared_frames(), 2, "two independent shared frames");
        // Unpin S1: the next dedup merges S2 (share count 2) into S1.
        m.dec_grant_mapping(s1).unwrap();
        let free_before = m.free_frames();
        assert_eq!(m.share_identical(), 1, "one duplicate frame freed");
        assert_eq!(m.free_frames(), free_before + 1);
        assert_eq!(
            m.shared_frames(),
            1,
            "S2's entire mapper set moved onto S1 — no partially-shared remnant"
        );
        for (dom, pfn) in [(a, Pfn(0)), (a, Pfn(1)), (b, Pfn(0)), (b, Pfn(1))] {
            assert_eq!(m.translate(dom, pfn).unwrap(), s1);
            assert_eq!(m.read(dom, pfn).unwrap(), b"glibc-text");
        }
        m.check_consistency().unwrap();
    }
}

#[cfg(test)]
mod dedup_on_write_tests {
    use super::*;

    #[test]
    fn incremental_dedup_matches_bulk_result() {
        // Bulk: write everything, then share_identical.
        let mut bulk = MemoryManager::new(1024);
        // Incremental: dedup as the writes happen.
        let mut inc = MemoryManager::new(1024);
        inc.set_dedup_on_write(true);
        for m in [&mut bulk, &mut inc] {
            for d in 1..=4u32 {
                m.populate(DomId(d), 8).unwrap();
            }
        }
        for d in 1..=4u32 {
            for pfn in 0..8u64 {
                let body = format!("lib-page-{}", pfn % 4);
                bulk.write(DomId(d), Pfn(pfn), body.as_bytes()).unwrap();
                inc.write(DomId(d), Pfn(pfn), body.as_bytes()).unwrap();
            }
        }
        let bulk_freed = bulk.share_identical();
        assert_eq!(
            inc.dedup_write_freed(),
            bulk_freed,
            "write-time merging reclaims the same duplicates"
        );
        assert_eq!(inc.share_identical(), 0, "nothing left for the bulk pass");
        assert_eq!(inc.free_frames(), bulk.free_frames());
        assert_eq!(inc.shared_frames(), bulk.shared_frames());
        for d in 1..=4u32 {
            for pfn in 0..8u64 {
                assert_eq!(
                    inc.read(DomId(d), Pfn(pfn)).unwrap(),
                    bulk.read(DomId(d), Pfn(pfn)).unwrap()
                );
            }
        }
        inc.check_consistency().unwrap();
        bulk.check_consistency().unwrap();
    }

    #[test]
    fn incremental_dedup_preserves_cow_isolation() {
        let mut m = MemoryManager::new(256);
        m.set_dedup_on_write(true);
        let a = DomId(1);
        let b = DomId(2);
        m.populate(a, 2).unwrap();
        m.populate(b, 2).unwrap();
        m.write(a, Pfn(0), b"same").unwrap();
        m.write(b, Pfn(0), b"same").unwrap();
        assert_eq!(m.dedup_write_freed(), 1);
        // Diverging write CoW-breaks as usual.
        m.write(b, Pfn(0), b"different").unwrap();
        assert_eq!(m.read(a, Pfn(0)).unwrap(), b"same");
        assert_eq!(m.read(b, Pfn(0)).unwrap(), b"different");
        m.check_consistency().unwrap();
    }

    #[test]
    fn pinned_frames_bypass_incremental_dedup() {
        let mut m = MemoryManager::new(256);
        m.set_dedup_on_write(true);
        let a = DomId(1);
        let b = DomId(2);
        m.populate(a, 1).unwrap();
        m.populate(b, 1).unwrap();
        m.write(a, Pfn(0), b"ring").unwrap();
        let mfn = m.translate(b, Pfn(0)).unwrap();
        m.inc_grant_mapping(mfn).unwrap();
        m.write(b, Pfn(0), b"ring").unwrap();
        assert_eq!(m.dedup_write_freed(), 0, "granted frame written in place");
        assert_ne!(
            m.translate(a, Pfn(0)).unwrap(),
            m.translate(b, Pfn(0)).unwrap()
        );
        m.check_consistency().unwrap();
    }
}

#[cfg(test)]
mod sharing_proptests {
    use super::*;
    use xoar_sim::prop::Runner;

    /// Writes through either domain after page sharing never leak into
    /// the other domain's view (copy-on-write isolation).
    #[test]
    fn cow_isolation() {
        Runner::cases(64).run("CoW isolation", |g| {
            let writes = g.vec(0..40, |g| (g.u8(0..2), g.u64(0..6), g.u8(0..4)));
            let mut m = MemoryManager::new(256);
            let a = DomId(1);
            let b = DomId(2);
            m.populate(a, 6).unwrap();
            m.populate(b, 6).unwrap();
            // Identical baseline everywhere.
            for pfn in 0..6u64 {
                m.write(a, Pfn(pfn), b"base").unwrap();
                m.write(b, Pfn(pfn), b"base").unwrap();
            }
            m.share_identical();
            // Shadow state per domain.
            let mut shadow = std::collections::HashMap::new();
            for (who, pfn, val) in writes {
                let dom = if who == 0 { a } else { b };
                let data = vec![val; 8];
                m.write(dom, Pfn(pfn), &data).unwrap();
                shadow.insert((dom, pfn), data);
            }
            for dom in [a, b] {
                for pfn in 0..6u64 {
                    let expect = shadow
                        .get(&(dom, pfn))
                        .cloned()
                        .unwrap_or_else(|| b"base".to_vec());
                    assert_eq!(m.read(dom, Pfn(pfn)).unwrap(), expect);
                }
            }
        });
    }

    /// Random interleavings of populate/write/transfer/dedup/release/
    /// rollback-style operations keep every derived structure (reverse
    /// index, share accounting, content-hash index, dirty candidates)
    /// in agreement with the naively recomputed shadow model, and every
    /// read in agreement with a per-(dom, pfn) content shadow.
    #[test]
    fn interleaved_ops_agree_with_shadow_model() {
        Runner::cases(96).run("interleaved ops vs shadow model", |g| {
            let incremental = g.u8(0..2) == 1;
            let ops = g.vec(0..60, |g| {
                (
                    g.u8(0..100), // op selector
                    g.u8(0..3),   // domain selector
                    g.u64(0..10), // pfn
                    g.u8(0..5),   // content selector
                )
            });
            let doms = [DomId(1), DomId(2), DomId(3)];
            let mut m = MemoryManager::new(4096);
            m.set_dedup_on_write(incremental);
            // Content shadow: what each live (dom, pfn) must read back.
            let mut shadow: HashMap<(DomId, u64), Vec<u8>> = HashMap::new();
            for &d in &doms {
                m.populate(d, 10).unwrap();
                for pfn in 0..10u64 {
                    shadow.insert((d, pfn), Vec::new());
                }
            }
            let mut next_pfn: HashMap<DomId, u64> = doms.iter().map(|&d| (d, 10u64)).collect();
            for (op, who, pfn, val) in ops {
                let dom = doms[who as usize % doms.len()];
                match op {
                    // Write one of a few contents (guaranteeing cross-
                    // domain duplicates for the dedup paths). Lengths
                    // straddle the inline-hash threshold, and val 0 at
                    // full page length is the canonical zero page — so
                    // the interleaving exercises inline, deferred, and
                    // constant-hash classification.
                    0..=49 => {
                        if shadow.contains_key(&(dom, pfn)) {
                            let len = [6usize, 200, PAGE_SIZE][val as usize % 3];
                            let body = vec![val; len];
                            m.write(dom, Pfn(pfn), &body).unwrap();
                            shadow.insert((dom, pfn), body);
                        }
                    }
                    // Bulk dedup.
                    50..=59 => {
                        m.share_identical();
                    }
                    // Page-flip to the next domain (only exclusive,
                    // unpinned frames transfer).
                    60..=74 => {
                        if shadow.contains_key(&(dom, pfn)) {
                            let to = doms[(who as usize + 1) % doms.len()];
                            if let Ok(new_pfn) = m.transfer_frame(dom, Pfn(pfn), to) {
                                let body = shadow.remove(&(dom, pfn)).unwrap();
                                assert_eq!(new_pfn.0, next_pfn[&to]);
                                shadow.insert((to, new_pfn.0), body);
                                *next_pfn.get_mut(&to).unwrap() += 1;
                            }
                        }
                    }
                    // Rollback-style: drain dirty pages and rewrite one
                    // of them by MFN (a bulk body, so the mfn write
                    // path defers its hash).
                    75..=84 => {
                        let dirty = m.take_dirty(dom);
                        if let Some(&(dpfn, mfn)) = dirty.first() {
                            let body = vec![val ^ 0x5a; 120];
                            m.write_mfn(mfn, &body).unwrap();
                            // write_mfn edits the frame in place: every
                            // mapper of that MFN sees the new bytes.
                            for (d, p) in m.mappers(mfn) {
                                shadow.insert((d, p.0), body.clone());
                            }
                            let _ = dpfn;
                        }
                    }
                    // Release and repopulate a domain.
                    85..=89 => {
                        m.release_domain(dom);
                        shadow.retain(|&(d, _), _| d != dom);
                        let first = m.populate(dom, 10).unwrap();
                        for pfn in first.0..first.0 + 10 {
                            shadow.insert((dom, pfn), Vec::new());
                        }
                        next_pfn.insert(dom, first.0 + 10);
                    }
                    // CoW break without a write.
                    _ => {
                        if shadow.contains_key(&(dom, pfn)) {
                            m.exclusive_mfn(dom, Pfn(pfn)).unwrap();
                        }
                    }
                }
                if let Err(e) = m.check_consistency() {
                    panic!("inconsistent after op {op}: {e}");
                }
            }
            for (&(dom, pfn), body) in &shadow {
                assert_eq!(m.read(dom, Pfn(pfn)).unwrap(), *body);
            }
        });
    }
}

#[cfg(test)]
mod lazy_hash_tests {
    use super::*;

    #[test]
    fn bulk_write_defers_hash_until_materialization() {
        let mut m = MemoryManager::new(64);
        let d = DomId(1);
        m.populate(d, 2).unwrap();
        m.write(d, Pfn(0), &[0x5a; 512]).unwrap();
        assert_eq!(m.pending_rehash(), 1, "bulk write queued, not hashed");
        let epoch = m.hash_epoch();
        assert_eq!(m.materialize_hashes(), 1);
        assert_eq!(m.pending_rehash(), 0);
        assert_eq!(m.hash_epoch(), epoch + 1);
        assert_eq!(m.rehashed_frames(), 1);
        m.check_consistency().unwrap();
    }

    #[test]
    fn small_writes_hash_inline() {
        let mut m = MemoryManager::new(64);
        let d = DomId(1);
        m.populate(d, 1).unwrap();
        m.write(d, Pfn(0), b"ring-slot").unwrap();
        assert_eq!(m.pending_rehash(), 0, "tiny bodies never hit the queue");
        m.check_consistency().unwrap();
    }

    #[test]
    fn zero_page_write_is_canonical_and_unhashed() {
        let mut m = MemoryManager::new(64);
        let d = DomId(1);
        m.populate(d, 2).unwrap();
        m.write(d, Pfn(0), &[0u8; PAGE_SIZE]).unwrap();
        m.write(d, Pfn(1), &[0u8; PAGE_SIZE]).unwrap();
        assert_eq!(m.pending_rehash(), 0, "zero pages carry a constant hash");
        let a = m.read(d, Pfn(0)).unwrap();
        let b = m.read(d, Pfn(1)).unwrap();
        assert!(
            PageRef::ptr_eq(&a, &b),
            "both frames share the canonical zero page"
        );
        assert!(a.is_canonical_zero());
        assert_eq!(a, [0u8; PAGE_SIZE], "byte-equal to a plain zero body");
        assert_eq!(ZERO_PAGE_HASH, content_hash(&[0u8; PAGE_SIZE]));
        // Zero frames hold real content: they are dedup candidates.
        assert_eq!(m.share_identical(), 1);
        m.check_consistency().unwrap();
    }

    #[test]
    fn repeated_bulk_writes_queue_once() {
        let mut m = MemoryManager::new(64);
        let d = DomId(1);
        m.populate(d, 1).unwrap();
        for i in 0..10u8 {
            m.write(d, Pfn(0), &vec![i + 1; 256]).unwrap();
        }
        assert_eq!(
            m.stale_hashes.len(),
            1,
            "only the valid→stale transition queues"
        );
        assert_eq!(m.materialize_hashes(), 1);
        m.check_consistency().unwrap();
    }

    #[test]
    fn dedup_materializes_stale_twins() {
        let mut m = MemoryManager::new(64);
        let (a, b) = (DomId(1), DomId(2));
        m.populate(a, 1).unwrap();
        m.populate(b, 1).unwrap();
        let body = vec![7u8; 1000];
        m.write(a, Pfn(0), &body).unwrap();
        m.write(b, Pfn(0), &body).unwrap();
        assert_eq!(m.pending_rehash(), 2);
        assert_eq!(
            m.share_identical(),
            1,
            "stale twins materialized and merged"
        );
        assert_eq!(m.pending_rehash(), 0);
        m.check_consistency().unwrap();
    }

    #[test]
    fn cow_break_of_stale_frame_propagates_staleness() {
        let mut m = MemoryManager::new(64);
        let (a, b) = (DomId(1), DomId(2));
        m.populate(a, 1).unwrap();
        m.populate(b, 1).unwrap();
        let body = vec![9u8; 700];
        m.write(a, Pfn(0), &body).unwrap();
        m.write(b, Pfn(0), &body).unwrap();
        m.share_identical();
        // Dirty the shared frame in place via the mfn path, then break.
        let mfn = m.translate(a, Pfn(0)).unwrap();
        m.write_mfn(mfn, &[1u8; 700]).unwrap();
        assert_eq!(m.pending_rehash(), 1);
        m.exclusive_mfn(b, Pfn(0)).unwrap();
        assert_eq!(m.pending_rehash(), 2, "the private copy is stale too");
        m.check_consistency().unwrap();
        m.materialize_hashes();
        m.check_consistency().unwrap();
        assert_eq!(m.read(b, Pfn(0)).unwrap(), vec![1u8; 700]);
    }

    #[test]
    fn verify_integrity_is_schedule_independent() {
        let mut lazy = MemoryManager::new(256);
        let mut eager = MemoryManager::new(256);
        for m in [&mut lazy, &mut eager] {
            m.populate(DomId(1), 4).unwrap();
        }
        for pfn in 0..4u64 {
            let body = vec![pfn as u8 + 1; 300];
            lazy.write(DomId(1), Pfn(pfn), &body).unwrap();
            eager.write(DomId(1), Pfn(pfn), &body).unwrap();
            eager.materialize_hashes(); // eager schedule
        }
        assert_eq!(lazy.verify_integrity(), eager.verify_integrity());
        assert_eq!(lazy.pending_rehash(), 0);
    }

    #[test]
    fn freeze_and_template_seal_materialize() {
        let mut m = MemoryManager::new(256);
        let d = DomId(1);
        m.populate(d, 2).unwrap();
        m.write(d, Pfn(0), &[3u8; 400]).unwrap();
        assert_eq!(m.pending_rehash(), 1);
        m.freeze(d);
        assert_eq!(m.pending_rehash(), 0, "snapshot seal drains the queue");
        m.discard_frozen(d);
        m.write(d, Pfn(1), &[4u8; 400]).unwrap();
        assert_eq!(m.pending_rehash(), 1);
        m.template_arm(d).unwrap();
        assert_eq!(m.pending_rehash(), 0, "template seal drains the queue");
        m.check_consistency().unwrap();
    }
}

#[cfg(test)]
mod clone_tests {
    use super::*;

    /// A sealed 8-page template with distinct page bodies.
    fn template() -> (MemoryManager, DomId) {
        let mut m = MemoryManager::new(4096);
        let t = DomId(10);
        m.populate(t, 8).unwrap();
        for p in 0..8u64 {
            m.write(t, Pfn(p), format!("tpl{p}").as_bytes()).unwrap();
        }
        m.template_arm(t).unwrap();
        (m, t)
    }

    #[test]
    fn clone_space_is_frame_free() {
        let (mut m, t) = template();
        let free = m.free_frames();
        let c = DomId(20);
        assert_eq!(m.clone_space(t, c).unwrap(), 8);
        assert_eq!(m.free_frames(), free, "cloning reserves no frames");
        assert_eq!(m.owned_frames(c), 0);
        assert_eq!(m.template_clones(t), Some(1));
        assert_eq!(m.template_of(c), Some(t));
        m.check_consistency().unwrap();
    }

    #[test]
    fn clone_reads_fall_through_to_template() {
        let (mut m, t) = template();
        let c = DomId(20);
        m.clone_space(t, c).unwrap();
        for p in 0..8u64 {
            let tb = m.read(t, Pfn(p)).unwrap();
            let cb = m.read(c, Pfn(p)).unwrap();
            assert!(PageRef::ptr_eq(&tb, &cb), "clone shares the page body");
        }
        assert!(m.read(c, Pfn(8)).is_err(), "beyond the template: unmapped");
    }

    #[test]
    fn first_write_breaks_exactly_one_page() {
        let (mut m, t) = template();
        let c = DomId(20);
        m.clone_space(t, c).unwrap();
        let free = m.free_frames();
        m.write(c, Pfn(3), b"diverged").unwrap();
        assert_eq!(m.free_frames(), free - 1, "one private frame allocated");
        assert_eq!(m.clone_broken_pages(c), 1);
        assert_eq!(m.read(c, Pfn(3)).unwrap(), b"diverged");
        assert_eq!(m.read(t, Pfn(3)).unwrap(), b"tpl3", "template untouched");
        // The other seven pages still alias the template.
        for p in [0u64, 1, 2, 4, 5, 6, 7] {
            assert!(PageRef::ptr_eq(
                &m.read(t, Pfn(p)).unwrap(),
                &m.read(c, Pfn(p)).unwrap()
            ));
        }
        m.check_consistency().unwrap();
    }

    #[test]
    fn writes_to_one_clone_never_leak_to_another() {
        let (mut m, t) = template();
        let (a, b) = (DomId(20), DomId(21));
        m.clone_space(t, a).unwrap();
        m.clone_space(t, b).unwrap();
        m.write(a, Pfn(0), b"from-a").unwrap();
        assert_eq!(m.read(b, Pfn(0)).unwrap(), b"tpl0");
        m.write(b, Pfn(0), b"from-b").unwrap();
        assert_eq!(m.read(a, Pfn(0)).unwrap(), b"from-a");
        m.check_consistency().unwrap();
    }

    #[test]
    fn template_is_sealed_against_writes_and_transfer() {
        let (mut m, t) = template();
        let c = DomId(20);
        m.clone_space(t, c).unwrap();
        assert!(m.write(t, Pfn(0), b"mutate").is_err());
        let mfn = m.translate(t, Pfn(0)).unwrap();
        assert!(m.write_mfn(mfn, b"mutate").is_err());
        assert!(m.transfer_frame(t, Pfn(0), DomId(30)).is_err());
        // A clone cannot give away a template-backed (unbroken) page
        // either; once broken the page is private and transferable.
        assert!(m.transfer_frame(c, Pfn(0), DomId(30)).is_err());
        m.write(c, Pfn(0), b"mine").unwrap();
        m.transfer_frame(c, Pfn(0), DomId(30)).unwrap();
        m.check_consistency().unwrap();
    }

    #[test]
    fn grant_paths_privatise_clone_pages() {
        let (mut m, t) = template();
        let c = DomId(20);
        m.clone_space(t, c).unwrap();
        // exclusive_mfn must never hand out the template's frame, even
        // though that frame is rmap-single.
        let tpl_mfn = m.translate(t, Pfn(2)).unwrap();
        let got = m.exclusive_mfn(c, Pfn(2)).unwrap();
        assert_ne!(got, tpl_mfn, "clone got a private frame");
        assert_eq!(m.owner(got).unwrap(), c);
        assert_eq!(m.read(c, Pfn(2)).unwrap(), b"tpl2", "contents preserved");
        m.check_consistency().unwrap();
    }

    #[test]
    fn clone_cannot_be_template_and_template_cannot_be_cloned_twice() {
        let (mut m, t) = template();
        let c = DomId(20);
        m.clone_space(t, c).unwrap();
        assert!(m.template_arm(c).is_err(), "clones cannot be sealed");
        assert!(m.clone_space(t, c).is_err(), "clone already has a space");
        assert_eq!(m.template_arm(t).unwrap(), 8, "re-arming is idempotent");
    }

    #[test]
    fn release_clone_decrements_refcount_and_frees_broken_frames() {
        let (mut m, t) = template();
        let c = DomId(20);
        m.clone_space(t, c).unwrap();
        m.write(c, Pfn(1), b"broken").unwrap();
        let free = m.free_frames();
        let freed = m.release_domain(c);
        assert_eq!(freed, 1, "only the privatised frame is freed");
        assert_eq!(m.free_frames(), free + 1);
        assert_eq!(m.template_clones(t), Some(0));
        assert_eq!(m.read(t, Pfn(1)).unwrap(), b"tpl1");
        m.check_consistency().unwrap();
    }

    #[test]
    fn clone_populate_extends_above_watermark() {
        let (mut m, t) = template();
        let c = DomId(20);
        m.clone_space(t, c).unwrap();
        let first = m.populate(c, 2).unwrap();
        assert_eq!(first, Pfn(8), "new PFNs start at the template watermark");
        m.write(c, Pfn(9), b"own").unwrap();
        assert_eq!(m.read(c, Pfn(9)).unwrap(), b"own");
        assert!(m.read(t, Pfn(9)).is_err());
        m.check_consistency().unwrap();
    }

    #[test]
    fn multi_domain_frames_surface_template_sharing() {
        let (mut m, t) = template();
        let (a, b) = (DomId(20), DomId(21));
        m.clone_space(t, a).unwrap();
        m.clone_space(t, b).unwrap();
        m.write(a, Pfn(0), b"broken-in-a").unwrap();
        let shared = m.multi_domain_frames();
        assert_eq!(shared.len(), 8, "all template frames are shared");
        let mfn0 = m.translate(t, Pfn(0)).unwrap();
        let doms0 = &shared.iter().find(|&&(mf, _)| mf == mfn0).unwrap().1;
        assert_eq!(doms0, &vec![t, b], "a privatised pfn 0, b still shares");
        let mfn1 = m.translate(t, Pfn(1)).unwrap();
        let doms1 = &shared.iter().find(|&&(mf, _)| mf == mfn1).unwrap().1;
        assert_eq!(doms1, &vec![t, a, b]);
    }

    #[test]
    fn clone_snapshot_and_rollback_restores_template_bytes() {
        let (mut m, t) = template();
        let c = DomId(20);
        m.clone_space(t, c).unwrap();
        // Freeze the (unwritten) clone: it covers the template's pages.
        assert_eq!(m.freeze(c), 8);
        m.write(c, Pfn(4), b"scribble").unwrap();
        let restored = m.rollback_frozen(c, |_| false).unwrap();
        assert_eq!(restored, 1);
        assert_eq!(
            m.read(c, Pfn(4)).unwrap(),
            b"tpl4",
            "rollback restores the template pre-image into the private frame"
        );
        m.check_consistency().unwrap();
    }

    #[test]
    fn out_of_frames_surfaces_at_break_time() {
        let mut m = MemoryManager::new(8);
        let t = DomId(10);
        m.populate(t, 8).unwrap();
        m.write(t, Pfn(0), b"full").unwrap();
        m.template_arm(t).unwrap();
        let c = DomId(20);
        m.clone_space(t, c).unwrap();
        assert_eq!(m.read(c, Pfn(0)).unwrap(), b"full", "reads still work");
        let err = m.write(c, Pfn(0), b"x").unwrap_err();
        assert!(matches!(
            err,
            crate::error::HvError::Memory(MemError::OutOfFrames)
        ));
    }

    #[test]
    fn hundred_clones_share_until_first_write() {
        let (mut m, t) = template();
        let free = m.free_frames();
        for i in 0..100u32 {
            m.clone_space(t, DomId(100 + i)).unwrap();
        }
        assert_eq!(m.free_frames(), free, "100 clones, zero frames");
        for i in 0..100u32 {
            m.write(DomId(100 + i), Pfn(0), b"warm").unwrap();
        }
        assert_eq!(m.free_frames(), free - 100, "one break per clone");
        m.check_consistency().unwrap();
    }
}
