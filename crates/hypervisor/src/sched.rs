//! A credit-scheduler model for accounting simulated CPU time.
//!
//! Xen's credit scheduler assigns each domain a *weight* (proportional
//! share) and an optional *cap* (hard utilisation ceiling in percent).
//! Physical CPUs pick runnable VCPUs in credit order; domains that burn
//! their credits drop from UNDER to OVER priority.
//!
//! The model here keeps the essential proportional-share and cap semantics
//! and exposes a [`CreditScheduler::account`] step used by the simulation
//! crate to advance virtual time — enough to reproduce the evaluation's
//! timing phenomena (e.g. shard VCPUs competing with guest VCPUs) without
//! instruction-level fidelity.

use std::collections::HashMap;

use crate::fasthash::FastMap;

use crate::domain::DomId;

/// Scheduling parameters of one domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedParams {
    /// Proportional-share weight (Xen default 256).
    pub weight: u32,
    /// Utilisation cap in percent; 0 means uncapped.
    pub cap_percent: u32,
}

impl Default for SchedParams {
    fn default() -> Self {
        SchedParams {
            weight: 256,
            cap_percent: 0,
        }
    }
}

/// Credit priority bands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Has remaining credit.
    Under,
    /// Exhausted its credit this accounting period.
    Over,
}

#[derive(Debug, Clone)]
struct SchedEntry {
    params: SchedParams,
    credits: i64,
    runnable: bool,
    cpu_time_ns: u64,
}

/// Credits handed out per accounting period, divided by weight share.
const CREDITS_PER_PERIOD: i64 = 30_000;

/// The scheduler: tracks credits and distributes simulated CPU time.
#[derive(Debug)]
pub struct CreditScheduler {
    entries: FastMap<DomId, SchedEntry>,
    physical_cpus: u32,
}

impl CreditScheduler {
    /// Creates a scheduler for a host with `physical_cpus` CPUs.
    pub fn new(physical_cpus: u32) -> Self {
        CreditScheduler {
            entries: FastMap::default(),
            physical_cpus: physical_cpus.max(1),
        }
    }

    /// Registers a domain with default parameters.
    pub fn add_domain(&mut self, dom: DomId) {
        self.entries.entry(dom).or_insert(SchedEntry {
            params: SchedParams::default(),
            credits: 0,
            runnable: false,
            cpu_time_ns: 0,
        });
    }

    /// Removes a domain.
    pub fn remove_domain(&mut self, dom: DomId) {
        self.entries.remove(&dom);
    }

    /// Sets weight/cap for a domain. Returns false if unknown.
    pub fn set_params(&mut self, dom: DomId, params: SchedParams) -> bool {
        match self.entries.get_mut(&dom) {
            Some(e) => {
                e.params = params;
                true
            }
            None => false,
        }
    }

    /// Marks a domain runnable / blocked.
    pub fn set_runnable(&mut self, dom: DomId, runnable: bool) {
        if let Some(e) = self.entries.get_mut(&dom) {
            e.runnable = runnable;
        }
    }

    /// Current priority band of a domain.
    pub fn priority(&self, dom: DomId) -> Option<Priority> {
        self.entries.get(&dom).map(|e| {
            if e.credits > 0 {
                Priority::Under
            } else {
                Priority::Over
            }
        })
    }

    /// Accumulated CPU time of a domain in nanoseconds.
    pub fn cpu_time_ns(&self, dom: DomId) -> u64 {
        self.entries.get(&dom).map_or(0, |e| e.cpu_time_ns)
    }

    /// Runs one accounting period of `period_ns` nanoseconds of wall time,
    /// distributing `period_ns * physical_cpus` of CPU time among runnable
    /// domains in proportion to weight, respecting caps.
    ///
    /// Returns the time received by each runnable domain.
    pub fn account(&mut self, period_ns: u64) -> HashMap<DomId, u64> {
        let runnable: Vec<DomId> = self
            .entries
            .iter()
            .filter(|(_, e)| e.runnable)
            .map(|(&d, _)| d)
            .collect();
        let mut granted = HashMap::new();
        if runnable.is_empty() {
            return granted;
        }
        let total_weight: u64 = runnable
            .iter()
            .map(|d| self.entries[d].params.weight as u64)
            .sum();
        let total_cpu_ns = period_ns.saturating_mul(self.physical_cpus as u64);
        // First pass: proportional share, capped.
        let mut leftover: u64 = 0;
        for d in &runnable {
            let Some(e) = self.entries.get_mut(d) else {
                continue;
            };
            let share = total_cpu_ns * e.params.weight as u64 / total_weight.max(1);
            // A domain cannot exceed one CPU's worth of time per VCPU; the
            // model uses one VCPU per accounting entity, optionally capped.
            let mut slice = share.min(period_ns);
            if e.params.cap_percent > 0 {
                slice = slice.min(period_ns * e.params.cap_percent as u64 / 100);
            }
            leftover += share.saturating_sub(slice);
            e.cpu_time_ns += slice;
            granted.insert(*d, slice);
        }
        // Second pass: hand leftover to uncapped domains round-robin-ish
        // (proportional again), bounded by one CPU each.
        if leftover > 0 {
            let uncapped: Vec<DomId> = runnable
                .iter()
                .copied()
                .filter(|d| self.entries[d].params.cap_percent == 0)
                .collect();
            if !uncapped.is_empty() {
                let extra = leftover / uncapped.len() as u64;
                for d in &uncapped {
                    let Some(e) = self.entries.get_mut(d) else {
                        continue;
                    };
                    let already = granted.get(d).copied().unwrap_or(0);
                    let room = period_ns.saturating_sub(already);
                    let add = extra.min(room);
                    e.cpu_time_ns += add;
                    *granted.entry(*d).or_insert(0) += add;
                }
            }
        }
        // Credit refresh: earn by weight, burn by time used.
        for d in &runnable {
            let Some(e) = self.entries.get_mut(d) else {
                continue;
            };
            let earn = CREDITS_PER_PERIOD * e.params.weight as i64 / total_weight.max(1) as i64;
            // 1 credit per microsecond.
            let burn = (granted.get(d).copied().unwrap_or(0) / 1_000) as i64;
            e.credits = (e.credits + earn - burn).clamp(-CREDITS_PER_PERIOD, CREDITS_PER_PERIOD);
        }
        granted
    }
}

/// One schedulable VCPU: a (domain, vcpu-index) pair.
///
/// The credit accounting above stays per-domain (weights and caps are
/// domain properties in Xen too); runqueues schedule at VCPU granularity
/// so a multi-vcpu guest can occupy several pcpus at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VcpuRef {
    /// Owning domain.
    pub dom: DomId,
    /// VCPU index within the domain.
    pub vcpu: u32,
}

/// Per-pcpu runqueues with credit-ordered picking and work stealing.
///
/// One queue per simulated physical CPU. [`RunQueues::pick_next`] serves
/// a pcpu its next VCPU — the first UNDER-priority one in queue order,
/// falling back to the head (Xen's credit scheduler likewise services
/// the UNDER band before OVER). An idle pcpu may [`RunQueues::steal`]
/// from a peer queue holding more than one runnable VCPU; the victim
/// scan is deterministic (ascending from the thief, wrapping), which is
/// what keeps multi-runqueue interleavings reproducible under the DES.
#[derive(Debug, Clone)]
pub struct RunQueues {
    queues: Vec<std::collections::VecDeque<VcpuRef>>,
    steals: u64,
}

impl RunQueues {
    /// Creates `count` runqueues (at least one).
    pub fn new(count: usize) -> Self {
        RunQueues {
            queues: vec![std::collections::VecDeque::new(); count.max(1)],
            steals: 0,
        }
    }

    /// Number of runqueues (== simulated pcpus).
    pub fn queue_count(&self) -> usize {
        self.queues.len()
    }

    /// Enqueues a VCPU at the tail of runqueue `rq`.
    pub fn enqueue(&mut self, rq: usize, v: VcpuRef) {
        let n = self.queues.len();
        self.queues[rq % n].push_back(v);
    }

    /// Dequeues pcpu `rq`'s next VCPU: the first whose domain is in the
    /// UNDER credit band, else the queue head. `None` if the queue is
    /// empty (the pcpu should then try to [`Self::steal`]).
    pub fn pick_next(&mut self, rq: usize, sched: &CreditScheduler) -> Option<VcpuRef> {
        let n = self.queues.len();
        let q = &mut self.queues[rq % n];
        let at = q
            .iter()
            .position(|v| sched.priority(v.dom) == Some(Priority::Under))
            .unwrap_or(0);
        q.remove(at)
    }

    /// Steals one VCPU for idle pcpu `thief`: scans the other queues in
    /// ascending order starting after the thief (wrapping), and takes
    /// from the *tail* of the first queue holding more than one runnable
    /// VCPU — a queue with exactly one keeps it, so stealing never
    /// starves the victim pcpu.
    pub fn steal(&mut self, thief: usize) -> Option<VcpuRef> {
        let n = self.queues.len();
        let thief = thief % n;
        for off in 1..n {
            let victim = (thief + off) % n;
            if self.queues[victim].len() > 1 {
                let v = self.queues[victim].pop_back();
                self.steals += 1;
                return v;
            }
        }
        None
    }

    /// Length of runqueue `rq`.
    pub fn queue_len(&self, rq: usize) -> usize {
        self.queues.get(rq).map_or(0, |q| q.len())
    }

    /// Total queued VCPUs across all runqueues.
    pub fn total_len(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Number of successful steals so far.
    pub fn steals(&self) -> u64 {
        self.steals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    fn sched_with(doms: &[(u32, u32, u32)]) -> CreditScheduler {
        // (id, weight, cap)
        let mut s = CreditScheduler::new(2);
        for &(id, weight, cap) in doms {
            let d = DomId(id);
            s.add_domain(d);
            s.set_params(
                d,
                SchedParams {
                    weight,
                    cap_percent: cap,
                },
            );
            s.set_runnable(d, true);
        }
        s
    }

    #[test]
    fn equal_weights_share_equally() {
        let mut s = sched_with(&[(1, 256, 0), (2, 256, 0)]);
        let g = s.account(10 * MS);
        assert_eq!(g[&DomId(1)], g[&DomId(2)]);
        // 2 CPUs, 2 domains: each gets a full CPU.
        assert_eq!(g[&DomId(1)], 10 * MS);
    }

    #[test]
    fn weights_are_proportional() {
        // 4 domains on 2 CPUs so shares are contended.
        let mut s = sched_with(&[(1, 512, 0), (2, 256, 0), (3, 256, 0), (4, 0x200, 0)]);
        let g = s.account(10 * MS);
        assert!(
            g[&DomId(1)] > g[&DomId(2)],
            "higher weight gets more time: {:?}",
            g
        );
    }

    #[test]
    fn cap_limits_time() {
        let mut s = sched_with(&[(1, 256, 25)]);
        let g = s.account(100 * MS);
        assert!(
            g[&DomId(1)] <= 25 * MS,
            "capped at 25%: got {}",
            g[&DomId(1)]
        );
    }

    #[test]
    fn blocked_domains_receive_nothing() {
        let mut s = sched_with(&[(1, 256, 0), (2, 256, 0)]);
        s.set_runnable(DomId(2), false);
        let g = s.account(10 * MS);
        assert!(g.contains_key(&DomId(1)));
        assert!(!g.contains_key(&DomId(2)));
    }

    #[test]
    fn no_domain_exceeds_one_cpu() {
        let mut s = sched_with(&[(1, 4096, 0)]);
        let g = s.account(10 * MS);
        assert_eq!(g[&DomId(1)], 10 * MS, "single VCPU bounded by wall time");
    }

    #[test]
    fn cpu_time_accumulates() {
        let mut s = sched_with(&[(1, 256, 0)]);
        s.account(5 * MS);
        s.account(5 * MS);
        assert_eq!(s.cpu_time_ns(DomId(1)), 10 * MS);
    }

    #[test]
    fn priority_drops_after_burning_credit() {
        let mut s = sched_with(&[(1, 256, 0), (2, 256, 0), (3, 256, 0), (4, 256, 0)]);
        assert_eq!(
            s.priority(DomId(1)),
            Some(Priority::Over),
            "starts at zero credit"
        );
        // Burn a lot of CPU: credits go negative (stay Over) for heavy users.
        for _ in 0..10 {
            s.account(30 * MS);
        }
        // All domains earn and burn symmetrically here; just check the API.
        assert!(s.priority(DomId(1)).is_some());
        assert_eq!(s.priority(DomId(99)), None);
    }

    #[test]
    fn remove_domain_stops_accounting() {
        let mut s = sched_with(&[(1, 256, 0), (2, 256, 0)]);
        s.remove_domain(DomId(1));
        let g = s.account(10 * MS);
        assert!(!g.contains_key(&DomId(1)));
    }
}

#[cfg(test)]
mod runqueue_tests {
    use super::*;

    fn v(dom: u32, vcpu: u32) -> VcpuRef {
        VcpuRef {
            dom: DomId(dom),
            vcpu,
        }
    }

    /// A scheduler where the listed domains are UNDER (positive credit)
    /// and everyone else unknown/OVER.
    fn sched_under(under: &[u32]) -> CreditScheduler {
        let mut s = CreditScheduler::new(1);
        for &id in under {
            let d = DomId(id);
            s.add_domain(d);
            s.set_runnable(d, true);
        }
        // One account period with a single runnable domain leaves it with
        // positive credit (earns full, burns what it used — weights equal,
        // one CPU, so earn == burn only under full contention).
        for &id in under {
            if let Some(e) = s.entries.get_mut(&DomId(id)) {
                e.credits = 1;
            }
        }
        s
    }

    #[test]
    fn pick_prefers_under_band() {
        let s = sched_under(&[2]);
        let mut rq = RunQueues::new(1);
        rq.enqueue(0, v(1, 0));
        rq.enqueue(0, v(2, 0));
        rq.enqueue(0, v(3, 0));
        // Domain 2 is UNDER: picked ahead of the head.
        assert_eq!(rq.pick_next(0, &s), Some(v(2, 0)));
        // No UNDER vcpu left: falls back to queue order.
        assert_eq!(rq.pick_next(0, &s), Some(v(1, 0)));
        assert_eq!(rq.pick_next(0, &s), Some(v(3, 0)));
        assert_eq!(rq.pick_next(0, &s), None);
    }

    #[test]
    fn steal_scans_ascending_and_requires_surplus() {
        let mut rq = RunQueues::new(4);
        rq.enqueue(1, v(1, 0)); // exactly one: protected
        rq.enqueue(3, v(2, 0));
        rq.enqueue(3, v(2, 1)); // surplus: stealable
                                // Thief 0 skips queue 1 (no surplus) and queue 2 (empty), takes
                                // queue 3's tail.
        assert_eq!(rq.steal(0), Some(v(2, 1)));
        assert_eq!(rq.steals(), 1);
        // Queue 3 now holds one: nothing left to steal anywhere.
        assert_eq!(rq.steal(0), None);
        assert_eq!(rq.steals(), 1);
        assert_eq!(rq.queue_len(1), 1);
    }

    #[test]
    fn single_runqueue_never_steals() {
        let mut rq = RunQueues::new(1);
        rq.enqueue(0, v(1, 0));
        rq.enqueue(0, v(1, 1));
        assert_eq!(rq.steal(0), None);
        assert_eq!(rq.steals(), 0);
        assert_eq!(rq.total_len(), 2);
    }

    #[test]
    fn zero_count_clamps_to_one() {
        let rq = RunQueues::new(0);
        assert_eq!(rq.queue_count(), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use xoar_sim::prop::Runner;

    /// Total granted time never exceeds period * physical CPUs.
    #[test]
    fn conservation_of_cpu() {
        Runner::cases(64).run("conservation of CPU", |g| {
            let weights = g.vec(1..10, |g| g.u32(1..1024));
            let cpus = g.u32(1..8);
            let period_ms = g.u64(1..50);
            let mut s = CreditScheduler::new(cpus);
            for (i, w) in weights.iter().enumerate() {
                let d = DomId(i as u32 + 1);
                s.add_domain(d);
                s.set_params(
                    d,
                    SchedParams {
                        weight: *w,
                        cap_percent: 0,
                    },
                );
                s.set_runnable(d, true);
            }
            let period = period_ms * 1_000_000;
            let granted = s.account(period);
            let total: u64 = granted.values().sum();
            assert!(total <= period * cpus as u64);
            // And nobody exceeds a single CPU.
            for v in granted.values() {
                assert!(*v <= period);
            }
        });
    }
}
