//! Domains: the unit of isolation managed by the hypervisor.
//!
//! A *domain* is a virtual machine as seen from the hypervisor: an ID, a
//! lifecycle state, a set of virtual CPUs, a memory reservation, and — in
//! Xoar — a set of explicitly assigned privileges (see
//! [`crate::privilege`]).
//!
//! In stock Xen exactly one domain, Dom0, holds blanket control privileges;
//! in Xoar every service VM ("shard") is a regular domain whose extra
//! capabilities are whitelisted individually.

use std::collections::BTreeSet;
use std::fmt;

use crate::privilege::PrivilegeSet;

/// A domain identifier.
///
/// `DomId(0)` is reserved: in stock Xen it denotes the control VM (Dom0)
/// and several legacy interfaces hard-code comparisons against it
/// (§5.8 of the paper). Xoar keeps the numbering but removes the implicit
/// privileges attached to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DomId(pub u32);

xoar_codec::impl_json_newtype!(DomId(u32));

impl DomId {
    /// The well-known ID of the control VM in stock Xen.
    pub const DOM0: DomId = DomId(0);

    /// Returns `true` for the legacy control-VM ID.
    pub fn is_dom0(self) -> bool {
        self == Self::DOM0
    }
}

impl fmt::Display for DomId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dom{}", self.0)
    }
}

/// Lifecycle state of a domain.
///
/// Mirrors Xen's domain states; `Snapshotted` is Xoar's addition for
/// components that have taken a [`crate::snapshot`] image and may be rolled
/// back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainState {
    /// Memory image being constructed by the builder; not yet runnable.
    Building,
    /// Eligible to be scheduled.
    Running,
    /// Explicitly paused by a toolstack.
    Paused,
    /// In the process of being torn down; resources being reclaimed.
    Dying,
    /// Fully destroyed; the ID may linger until the last reference drops.
    Dead,
    /// Suspended at the point of a consistent snapshot.
    Snapshotted,
}

xoar_codec::impl_json_enum!(DomainState {
    Building,
    Running,
    Paused,
    Dying,
    Dead,
    Snapshotted,
});

impl DomainState {
    /// Whether the domain can issue hypercalls in this state.
    pub fn can_issue_hypercalls(self) -> bool {
        matches!(self, DomainState::Running)
    }

    /// Whether the state is terminal.
    pub fn is_terminal(self) -> bool {
        matches!(self, DomainState::Dead)
    }
}

/// A virtual CPU belonging to a domain.
#[derive(Debug, Clone)]
pub struct Vcpu {
    /// Index of this VCPU within its domain.
    pub id: u32,
    /// Whether the VCPU is online (brought up by the guest).
    pub online: bool,
    /// Accumulated scheduled time in nanoseconds (simulation time).
    pub cpu_time_ns: u64,
}

xoar_codec::impl_json_struct!(Vcpu {
    id,
    online,
    cpu_time_ns
});

impl Vcpu {
    /// Creates a new offline VCPU.
    pub fn new(id: u32) -> Self {
        Vcpu {
            id,
            online: false,
            cpu_time_ns: 0,
        }
    }
}

/// The kind of workload a domain hosts.
///
/// This is descriptive metadata used by the platform layers and the audit
/// log; the hypervisor itself enforces nothing based on it (trust derives
/// solely from the [`PrivilegeSet`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainRole {
    /// The monolithic control VM of stock Xen.
    ControlVm,
    /// A Xoar service VM.
    Shard,
    /// A tenant guest VM.
    Guest,
}

xoar_codec::impl_json_enum!(DomainRole {
    ControlVm,
    Shard,
    Guest,
});

/// Per-domain bookkeeping held by the hypervisor.
#[derive(Debug, Clone)]
pub struct Domain {
    /// The domain's identifier.
    pub id: DomId,
    /// Human-readable name (as registered in XenStore).
    pub name: String,
    /// Current lifecycle state.
    pub state: DomainState,
    /// Role metadata.
    pub role: DomainRole,
    /// Virtual CPUs.
    pub vcpus: Vec<Vcpu>,
    /// Memory reservation in MiB (the figure reported in Table 6.1).
    pub memory_mib: u64,
    /// Assigned privileges. Empty for ordinary guests.
    pub privileges: PrivilegeSet,
    /// The toolstack that built this domain and is allowed to manage it
    /// (§5.6: "we add a flag marking the parent Toolstack for every guest
    /// VM, which is set during VM creation").
    pub parent_toolstack: Option<DomId>,
    /// Shards this domain has been delegated to use as service providers.
    pub delegated_shards: BTreeSet<DomId>,
    /// Domains whose memory this domain may map for device emulation
    /// (the QEMU stub-domain flag of §5.6).
    pub privileged_for: BTreeSet<DomId>,
    /// Constraint-group tag for controlled sharing (§3.2.1).
    pub constraint_group: Option<String>,
    /// Simulated boot epoch (nanoseconds); used by the audit log.
    pub created_at_ns: u64,
    /// Number of times this domain has been microrebooted.
    pub restart_count: u64,
}

impl Domain {
    /// Creates a new domain record in the `Building` state.
    pub fn new(id: DomId, name: impl Into<String>, role: DomainRole, memory_mib: u64) -> Self {
        Domain {
            id,
            name: name.into(),
            state: DomainState::Building,
            role,
            vcpus: vec![Vcpu::new(0)],
            memory_mib,
            privileges: PrivilegeSet::default(),
            parent_toolstack: None,
            delegated_shards: BTreeSet::new(),
            privileged_for: BTreeSet::new(),
            constraint_group: None,
            created_at_ns: 0,
            restart_count: 0,
        }
    }

    /// Whether this domain is a shard (set via the `shard` config block).
    pub fn is_shard(&self) -> bool {
        self.role == DomainRole::Shard || self.role == DomainRole::ControlVm
    }

    /// Sets the number of VCPUs (used at build time).
    pub fn set_vcpus(&mut self, n: u32) {
        self.vcpus = (0..n.max(1)).map(Vcpu::new).collect();
    }

    /// Marks the domain runnable, bringing every configured VCPU online
    /// (a multi-vcpu guest occupies several runqueue slots at once).
    pub fn unpause(&mut self) {
        self.state = DomainState::Running;
        for v in &mut self.vcpus {
            v.online = true;
        }
    }

    /// References to this domain's online VCPUs, for runqueue placement.
    pub fn online_vcpus(&self) -> impl Iterator<Item = u32> + '_ {
        self.vcpus.iter().filter(|v| v.online).map(|v| v.id)
    }

    /// Whether `other` is allowed to manage this domain.
    ///
    /// Stock Xen answers "is `other` Dom0"; Xoar answers "is `other` the
    /// parent toolstack recorded at creation".
    pub fn managed_by(&self, other: DomId) -> bool {
        self.parent_toolstack == Some(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dom0_is_special_only_by_convention() {
        assert!(DomId::DOM0.is_dom0());
        assert!(!DomId(5).is_dom0());
        assert_eq!(DomId::DOM0.to_string(), "dom0");
    }

    #[test]
    fn new_domain_starts_building_with_one_vcpu() {
        let d = Domain::new(DomId(3), "guest-a", DomainRole::Guest, 1024);
        assert_eq!(d.state, DomainState::Building);
        assert_eq!(d.vcpus.len(), 1);
        assert!(!d.vcpus[0].online);
        assert!(!d.state.can_issue_hypercalls());
    }

    #[test]
    fn unpause_transitions_to_running() {
        let mut d = Domain::new(DomId(3), "guest-a", DomainRole::Guest, 1024);
        d.unpause();
        assert_eq!(d.state, DomainState::Running);
        assert!(d.vcpus[0].online);
        assert!(d.state.can_issue_hypercalls());
    }

    #[test]
    fn unpause_brings_all_vcpus_online() {
        let mut d = Domain::new(DomId(3), "smp", DomainRole::Guest, 1024);
        d.set_vcpus(4);
        d.unpause();
        assert!(d.vcpus.iter().all(|v| v.online));
        assert_eq!(d.online_vcpus().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn set_vcpus_clamps_to_at_least_one() {
        let mut d = Domain::new(DomId(3), "g", DomainRole::Guest, 64);
        d.set_vcpus(0);
        assert_eq!(d.vcpus.len(), 1);
        d.set_vcpus(4);
        assert_eq!(d.vcpus.len(), 4);
    }

    #[test]
    fn management_requires_parent_toolstack() {
        let mut d = Domain::new(DomId(9), "g", DomainRole::Guest, 64);
        assert!(!d.managed_by(DomId(2)));
        d.parent_toolstack = Some(DomId(2));
        assert!(d.managed_by(DomId(2)));
        assert!(
            !d.managed_by(DomId(0)),
            "even dom0 is not implicitly a manager in Xoar"
        );
    }

    #[test]
    fn shard_roles() {
        let g = Domain::new(DomId(1), "g", DomainRole::Guest, 64);
        let s = Domain::new(DomId(2), "netback", DomainRole::Shard, 128);
        let c = Domain::new(DomId(0), "dom0", DomainRole::ControlVm, 750);
        assert!(!g.is_shard());
        assert!(s.is_shard());
        assert!(c.is_shard());
    }

    #[test]
    fn terminal_state() {
        assert!(DomainState::Dead.is_terminal());
        assert!(!DomainState::Dying.is_terminal());
    }
}
