//! Error types for hypervisor operations.
//!
//! Every fallible hypercall returns [`HvError`] on failure, mirroring the
//! negative errno convention of the real Xen hypercall ABI but in idiomatic
//! Rust form.

use core::fmt;

use crate::domain::DomId;

/// Errors returned by hypervisor operations.
///
/// The variants mirror the classes of failure Xen reports through negative
/// errno values, with extra payload where it aids diagnosis (for example the
/// offending [`DomId`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HvError {
    /// The referenced domain does not exist.
    NoSuchDomain(DomId),
    /// The referenced domain exists but is in the wrong lifecycle state.
    InvalidDomainState {
        /// Domain the operation targeted.
        dom: DomId,
        /// Human-readable description of the expected state.
        expected: &'static str,
    },
    /// The caller lacks the privilege required for the operation.
    ///
    /// This is the central error of the Xoar security model: it is returned
    /// whenever a hypercall is not on the caller's whitelist, when a
    /// non-shard attempts shard-only functionality, or when a toolstack
    /// manages a VM that was not delegated to it.
    PermissionDenied {
        /// Domain that issued the request.
        caller: DomId,
        /// Description of the privilege that was missing.
        privilege: String,
    },
    /// A memory-related failure: out of frames, bad frame number, etc.
    Memory(MemError),
    /// A grant-table failure.
    Grant(GrantError),
    /// An event-channel failure.
    Event(EventError),
    /// The hypercall is not recognised or not implemented.
    BadHypercall(&'static str),
    /// An argument was structurally invalid.
    InvalidArgument(String),
    /// A resource limit (domains, ports, grants) was exhausted.
    LimitExceeded(&'static str),
    /// Snapshot/rollback subsystem failure.
    Snapshot(String),
    /// The target device or resource is already assigned elsewhere.
    AlreadyAssigned(String),
}

/// Memory subsystem errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// No free machine frames remain.
    OutOfFrames,
    /// The machine frame number is out of range or unallocated.
    BadMfn(u64),
    /// The pseudo-physical frame number is not mapped for the domain.
    BadPfn(u64),
    /// The frame is owned by a different domain.
    NotOwner {
        /// Frame in question.
        mfn: u64,
        /// Actual owner.
        owner: DomId,
    },
    /// The frame is still mapped or granted and cannot be freed.
    FrameBusy(u64),
}

/// Grant-table errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrantError {
    /// The grant reference is out of range for the granting domain.
    BadRef(u32),
    /// The grant entry is not active / not granted to the caller.
    NotGranted,
    /// The entry is already in use and cannot be modified.
    InUse,
    /// The grantee attempted an access mode the grant does not permit.
    AccessDenied,
    /// The grant table is full.
    TableFull,
    /// Unmap of a grant that was never mapped by the caller.
    NotMapped,
}

/// Event-channel errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventError {
    /// The port number is invalid or closed.
    BadPort(u32),
    /// The port is already bound.
    AlreadyBound(u32),
    /// No free ports remain for the domain.
    NoFreePorts,
    /// The remote end refused or does not exist.
    BadRemote,
    /// Binding two ends that do not match (wrong domain pair).
    BindMismatch,
}

impl fmt::Display for HvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HvError::NoSuchDomain(d) => write!(f, "no such domain: {d}"),
            HvError::InvalidDomainState { dom, expected } => {
                write!(f, "domain {dom} in invalid state (expected {expected})")
            }
            HvError::PermissionDenied { caller, privilege } => {
                write!(f, "permission denied for {caller}: requires {privilege}")
            }
            HvError::Memory(e) => write!(f, "memory error: {e:?}"),
            HvError::Grant(e) => write!(f, "grant error: {e:?}"),
            HvError::Event(e) => write!(f, "event channel error: {e:?}"),
            HvError::BadHypercall(name) => write!(f, "bad hypercall: {name}"),
            HvError::InvalidArgument(s) => write!(f, "invalid argument: {s}"),
            HvError::LimitExceeded(what) => write!(f, "limit exceeded: {what}"),
            HvError::Snapshot(s) => write!(f, "snapshot error: {s}"),
            HvError::AlreadyAssigned(s) => write!(f, "already assigned: {s}"),
        }
    }
}

impl std::error::Error for HvError {}

impl From<MemError> for HvError {
    fn from(e: MemError) -> Self {
        HvError::Memory(e)
    }
}

impl From<GrantError> for HvError {
    fn from(e: GrantError) -> Self {
        HvError::Grant(e)
    }
}

impl From<EventError> for HvError {
    fn from(e: EventError) -> Self {
        HvError::Event(e)
    }
}

/// Convenient result alias for hypervisor operations.
pub type HvResult<T> = Result<T, HvError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_domain() {
        let e = HvError::NoSuchDomain(DomId(7));
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn display_permission_denied_names_privilege() {
        let e = HvError::PermissionDenied {
            caller: DomId(3),
            privilege: "domctl.create".into(),
        };
        let s = e.to_string();
        assert!(s.contains("dom3"));
        assert!(s.contains("domctl.create"));
    }

    #[test]
    fn sub_errors_convert() {
        let e: HvError = MemError::OutOfFrames.into();
        assert!(matches!(e, HvError::Memory(MemError::OutOfFrames)));
        let e: HvError = GrantError::TableFull.into();
        assert!(matches!(e, HvError::Grant(GrantError::TableFull)));
        let e: HvError = EventError::NoFreePorts.into();
        assert!(matches!(e, HvError::Event(EventError::NoFreePorts)));
    }
}
