//! A fixed-seed multiply-xor hasher for the hypervisor's hot lookup
//! tables (frame table, grant entries, domain maps, event ports).
//!
//! The standard `HashMap` hasher (SipHash with a per-instance random
//! seed) is built to resist collision flooding from untrusted string
//! keys. Every hot table in this crate is keyed by small integers the
//! hypervisor itself allocates (MFNs, grant refs, domain IDs, ports),
//! so that defence buys nothing here and costs ~20 ns per probe — which
//! dominates the batched grant path, where one multicall touches the
//! frame table and the grant table once per array entry.
//!
//! `FastHasher` is the rustc-style Fx construction: rotate, xor,
//! multiply by a golden-ratio-derived odd constant. It is deterministic
//! across runs, which is at worst neutral for the determinism goldens
//! (nothing observable may depend on map iteration order — the random
//! SipHash seed already scrambled it every run).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` on the fixed-seed [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// A `HashSet` on the fixed-seed [`FastHasher`].
pub type FastSet<T> = HashSet<T, BuildHasherDefault<FastHasher>>;

/// Multiplier from FxHash: 2^64 / phi, forced odd.
const SEED: u64 = 0x517c_c1b7_2722_0a95;

/// The rotate-xor-multiply hasher. One multiply per word of input; the
/// integer keys used throughout this crate hash in a single step.
#[derive(Debug, Default, Clone)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes([
                c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7],
            ]));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: T) -> u64 {
        let mut h = FastHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(42u64), hash_of(42u64));
        assert_eq!(hash_of("grant"), hash_of("grant"));
    }

    #[test]
    fn distinguishes_nearby_integer_keys() {
        // Consecutive MFNs / grant refs (the dominant key shape) must not
        // collide or cluster trivially.
        let hashes: std::collections::HashSet<u64> = (0u64..4096).map(hash_of).collect();
        assert_eq!(hashes.len(), 4096);
    }

    #[test]
    fn map_behaves_like_std() {
        let mut m: FastMap<u32, &str> = FastMap::default();
        m.insert(7, "seven");
        m.insert(9, "nine");
        assert_eq!(m.get(&7), Some(&"seven"));
        assert_eq!(m.remove(&9), Some("nine"));
        assert!(m.get(&9).is_none());
    }

    #[test]
    fn byte_stream_tail_is_hashed() {
        let a = hash_of([1u8, 2, 3, 4, 5, 6, 7, 8, 9].as_slice());
        let b = hash_of([1u8, 2, 3, 4, 5, 6, 7, 8, 10].as_slice());
        assert_ne!(a, b, "the 9th byte (chunk remainder) must matter");
    }
}
