//! A fixed-seed multiply-xor hasher for the hypervisor's hot lookup
//! tables (frame table, grant entries, domain maps, event ports).
//!
//! The standard `HashMap` hasher (SipHash with a per-instance random
//! seed) is built to resist collision flooding from untrusted string
//! keys. Every hot table in this crate is keyed by small integers the
//! hypervisor itself allocates (MFNs, grant refs, domain IDs, ports),
//! so that defence buys nothing here and costs ~20 ns per probe — which
//! dominates the batched grant path, where one multicall touches the
//! frame table and the grant table once per array entry.
//!
//! `FastHasher` is the rustc-style Fx construction: rotate, xor,
//! multiply by a golden-ratio-derived odd constant. It is deterministic
//! across runs, which is at worst neutral for the determinism goldens
//! (nothing observable may depend on map iteration order — the random
//! SipHash seed already scrambled it every run).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// A `HashMap` on the fixed-seed [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// A `HashSet` on the fixed-seed [`FastHasher`].
pub type FastSet<T> = HashSet<T, BuildHasherDefault<FastHasher>>;

/// A [`FastMap`] fronted by `N` inline slots: the first `N` distinct keys
/// live in a fixed array probed linearly (no hashing, no heap), and only
/// entries beyond that spill into the hash map.
///
/// This is the small-entry fast path the hot device tables want: a
/// steady-state data path touches a handful of keys (the active flows of
/// one batch, the rings of one backend) and a linear scan over a few
/// inline pairs beats a hash probe while staying allocation-free. The
/// same shape as the frame table's two-entry inline reverse index (see
/// DESIGN.md "Reverse index folded into the frame table"), generalised.
///
/// Lookups check the inline slots first, so an entry never exists in
/// both stores. Removing an inline entry backfills from the spill only
/// lazily (on a later insert), keeping removal O(N); iteration order is
/// inline-then-spill and deterministic for the inline prefix.
#[derive(Debug, Clone)]
pub struct InlineFastMap<K, V, const N: usize> {
    inline: [Option<(K, V)>; N],
    spill: FastMap<K, V>,
}

impl<K: Eq + Hash + Copy, V, const N: usize> InlineFastMap<K, V, N> {
    /// Creates an empty map.
    pub fn new() -> Self {
        InlineFastMap {
            inline: std::array::from_fn(|_| None),
            spill: FastMap::default(),
        }
    }

    /// Looks up `key`, probing the inline slots before the spill map.
    #[inline]
    pub fn get(&self, key: &K) -> Option<&V> {
        for slot in &self.inline {
            if let Some((k, v)) = slot {
                if k == key {
                    return Some(v);
                }
            }
        }
        self.spill.get(key)
    }

    /// Mutable lookup, same probe order as [`Self::get`].
    #[inline]
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        for slot in &mut self.inline {
            if let Some((k, v)) = slot {
                if k == key {
                    return Some(v);
                }
            }
        }
        self.spill.get_mut(key)
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Inserts `key -> value`, returning the previous value if any. New
    /// keys take the first free inline slot; only when all `N` are
    /// occupied does the entry go to the spill map.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let mut free = None;
        for (i, slot) in self.inline.iter_mut().enumerate() {
            match slot {
                Some((k, v)) if *k == key => return Some(std::mem::replace(v, value)),
                None if free.is_none() => free = Some(i),
                _ => {}
            }
        }
        if let Some(old) = self.spill.remove(&key) {
            // Key was spilled; keep it wherever there is room now.
            match free {
                Some(i) => self.inline[i] = Some((key, value)),
                None => {
                    self.spill.insert(key, value);
                }
            }
            return Some(old);
        }
        match free {
            Some(i) => self.inline[i] = Some((key, value)),
            None => {
                self.spill.insert(key, value);
            }
        }
        None
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        for slot in &mut self.inline {
            if matches!(slot, Some((k, _)) if k == key) {
                return slot.take().map(|(_, v)| v);
            }
        }
        self.spill.remove(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inline.iter().filter(|s| s.is_some()).count() + self.spill.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates every entry, inline slots first.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> + '_ {
        self.inline
            .iter()
            .filter_map(|s| s.as_ref().map(|(k, v)| (k, v)))
            .chain(self.spill.iter())
    }

    /// Removes every entry, keeping the spill map's capacity.
    pub fn clear(&mut self) {
        for slot in &mut self.inline {
            *slot = None;
        }
        self.spill.clear();
    }
}

impl<K: Eq + Hash + Copy, V, const N: usize> Default for InlineFastMap<K, V, N> {
    fn default() -> Self {
        Self::new()
    }
}

/// Multiplier from FxHash: 2^64 / phi, forced odd.
const SEED: u64 = 0x517c_c1b7_2722_0a95;

/// The rotate-xor-multiply hasher. One multiply per word of input; the
/// integer keys used throughout this crate hash in a single step.
#[derive(Debug, Default, Clone)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes([
                c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7],
            ]));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: T) -> u64 {
        let mut h = FastHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(42u64), hash_of(42u64));
        assert_eq!(hash_of("grant"), hash_of("grant"));
    }

    #[test]
    fn distinguishes_nearby_integer_keys() {
        // Consecutive MFNs / grant refs (the dominant key shape) must not
        // collide or cluster trivially.
        let hashes: std::collections::HashSet<u64> = (0u64..4096).map(hash_of).collect();
        assert_eq!(hashes.len(), 4096);
    }

    #[test]
    fn map_behaves_like_std() {
        let mut m: FastMap<u32, &str> = FastMap::default();
        m.insert(7, "seven");
        m.insert(9, "nine");
        assert_eq!(m.get(&7), Some(&"seven"));
        assert_eq!(m.remove(&9), Some("nine"));
        assert!(m.get(&9).is_none());
    }

    #[test]
    fn byte_stream_tail_is_hashed() {
        let a = hash_of([1u8, 2, 3, 4, 5, 6, 7, 8, 9].as_slice());
        let b = hash_of([1u8, 2, 3, 4, 5, 6, 7, 8, 10].as_slice());
        assert_ne!(a, b, "the 9th byte (chunk remainder) must matter");
    }

    #[test]
    fn inline_map_basic_ops() {
        let mut m: InlineFastMap<u32, &str, 2> = InlineFastMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(1, "one"), None);
        assert_eq!(m.insert(2, "two"), None);
        // Third distinct key spills past the two inline slots.
        assert_eq!(m.insert(3, "three"), None);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.get(&3), Some(&"three"));
        assert_eq!(m.insert(3, "III"), Some("three"));
        assert_eq!(m.remove(&2), Some("two"));
        assert_eq!(m.get(&2), None);
        *m.get_mut(&1).unwrap() = "I";
        assert_eq!(m.get(&1), Some(&"I"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn inline_map_never_duplicates_across_stores() {
        // Fill inline, spill one, free an inline slot, then re-insert the
        // spilled key: it must end up in exactly one store.
        let mut m: InlineFastMap<u32, u32, 2> = InlineFastMap::new();
        m.insert(1, 10);
        m.insert(2, 20);
        m.insert(3, 30); // spilled
        m.remove(&1); // inline slot frees
        assert_eq!(m.insert(3, 31), Some(30)); // migrates inline
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&3), Some(&31));
        assert_eq!(m.iter().count(), 2);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(&3), None);
    }

    #[test]
    fn inline_map_agrees_with_std_map_under_random_ops() {
        // Deterministic pseudo-random op stream checked against HashMap.
        let mut m: InlineFastMap<u64, u64, 4> = InlineFastMap::new();
        let mut reference: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for i in 0..4096u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % 16;
            match x % 3 {
                0 => {
                    assert_eq!(m.insert(key, i), reference.insert(key, i));
                }
                1 => {
                    assert_eq!(m.remove(&key), reference.remove(&key));
                }
                _ => {
                    assert_eq!(m.get(&key), reference.get(&key));
                }
            }
            assert_eq!(m.len(), reference.len());
        }
    }
}
