//! Per-domain state regions: the unit of hot-state isolation inside the
//! hypervisor.
//!
//! The monolithic monitor used to own one system-wide grant map, one
//! event-channel switch, and one console table; any operation could read
//! any domain's state through them. A [`Region`] gathers everything the
//! hypervisor keeps *per domain* on the hot path — the grant table, the
//! event-channel port table with its 2-level pending bitmap, and the
//! console ring — behind one owner, so that:
//!
//! * **intra-region** operations (allocating a port, installing a grant
//!   in your own table, writing your console) borrow exactly one region
//!   and by construction cannot reach another domain's state;
//! * **cross-region** operations (delivering an event, mapping a peer's
//!   grant, accepting a page transfer) must go through the typed
//!   [`crate::xregion::CrossRegionOp`] paths, which name both regions
//!   and are the only code that splits borrows across two regions.
//!
//! Machine memory stays global in [`crate::memory::MemoryManager`]: the
//! frame table models physically shared RAM, and region ownership there
//! is already tracked per frame. Everything else that was keyed by
//! [`DomId`] in the monitor now lives here.

use crate::domain::DomId;
use crate::event::{DomainPorts, PendingEvent, VirqKind};
use crate::grant::GrantTable;

/// The per-domain shard of hypervisor hot state.
///
/// Owned by the [`crate::hypervisor::Hypervisor`]'s region table and
/// created/destroyed with the domain itself.
#[derive(Debug)]
pub struct Region {
    /// The domain whose state this is.
    owner: DomId,
    /// This domain's grant table (entries it exports to peers).
    pub(crate) grants: GrantTable,
    /// This domain's event ports and pending bitmap.
    pub(crate) ports: DomainPorts,
    /// This domain's console output ring (drained by the console
    /// service).
    pub(crate) console: Vec<u8>,
}

impl Region {
    /// Creates the empty region for a freshly registered domain.
    pub(crate) fn new(owner: DomId) -> Self {
        Region {
            owner,
            grants: GrantTable::new(),
            ports: DomainPorts::default(),
            console: Vec::new(),
        }
    }

    /// The domain owning this region.
    pub fn owner(&self) -> DomId {
        self.owner
    }

    /// Read-only view of the grant table (audit/analysis surface).
    pub fn grant_table(&self) -> &GrantTable {
        &self.grants
    }

    // ----- intra-region event operations -----

    /// Allocates an unbound port bindable only by `remote`.
    pub(crate) fn alloc_unbound(&mut self, remote: DomId) -> crate::error::HvResult<u32> {
        self.ports.alloc_unbound(remote)
    }

    /// Binds a VIRQ to a fresh local port.
    pub(crate) fn bind_virq(&mut self, virq: VirqKind) -> crate::error::HvResult<u32> {
        self.ports.bind_virq(virq)
    }

    /// Marks the port bound to `virq` pending; `Some(fresh)` if bound.
    pub(crate) fn raise_virq(&mut self, virq: VirqKind) -> Option<bool> {
        self.ports.raise_virq(virq)
    }

    /// Dequeues the lowest-numbered pending event (`None` while masked).
    pub(crate) fn poll(&mut self) -> Option<PendingEvent> {
        self.ports.poll()
    }

    /// Drains all pending events into `out`; 0 while masked.
    pub(crate) fn drain_pending_into(&mut self, out: &mut Vec<PendingEvent>) -> usize {
        self.ports.drain_pending_into(out)
    }

    /// Number of distinct pending ports.
    pub fn pending_count(&self) -> usize {
        self.ports.pending_count()
    }

    /// Masks or unmasks event delivery (masking defers, never drops).
    pub(crate) fn set_event_mask(&mut self, masked: bool) {
        self.ports.set_masked(masked);
    }

    /// Whether `port` is connected to a live interdomain peer.
    pub fn event_connected(&self, port: u32) -> bool {
        self.ports.is_connected(port)
    }

    /// Sorted, deduplicated interdomain peers of this region.
    pub fn event_peers(&self) -> Vec<DomId> {
        self.ports.peers()
    }

    /// Resets the event half of the region to its freshly-registered
    /// state (the hypervisor-microreboot seam: ports, pending bits, and
    /// the mask all vanish, and port numbering restarts).
    pub(crate) fn reset_events(&mut self) {
        self.ports = DomainPorts::default();
    }

    // ----- intra-region console operations -----

    /// Appends bytes to the console ring.
    pub(crate) fn console_write(&mut self, data: &[u8]) {
        self.console.extend_from_slice(data);
    }

    /// Drains the console ring.
    pub(crate) fn console_take(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.console)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_region_is_empty() {
        let r = Region::new(DomId(7));
        assert_eq!(r.owner(), DomId(7));
        assert!(r.grant_table().is_empty());
        assert_eq!(r.pending_count(), 0);
        assert!(r.event_peers().is_empty());
    }

    #[test]
    fn console_round_trip() {
        let mut r = Region::new(DomId(1));
        r.console_write(b"hello ");
        r.console_write(b"world");
        assert_eq!(r.console_take(), b"hello world");
        assert!(r.console_take().is_empty());
    }

    #[test]
    fn reset_events_clears_ports_and_numbering() {
        let mut r = Region::new(DomId(1));
        let p = r.alloc_unbound(DomId(2)).unwrap();
        r.bind_virq(VirqKind::Timer).unwrap();
        r.raise_virq(VirqKind::Timer).unwrap();
        assert_eq!(r.pending_count(), 1);
        r.reset_events();
        assert_eq!(r.pending_count(), 0);
        assert!(r.raise_virq(VirqKind::Timer).is_none());
        // Numbering restarts from scratch, like a fresh registration.
        assert_eq!(r.alloc_unbound(DomId(2)).unwrap(), p);
    }

    #[test]
    fn virq_delivery_is_region_local() {
        let mut r = Region::new(DomId(3));
        let p = r.bind_virq(VirqKind::Console).unwrap();
        assert_eq!(r.raise_virq(VirqKind::Console), Some(true));
        assert_eq!(r.poll().unwrap().port, p);
        assert!(r.poll().is_none());
    }
}
