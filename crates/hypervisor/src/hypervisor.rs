//! The hypervisor proper: domain table, dispatch, and access control.
//!
//! [`Hypervisor`] owns machine memory, the scheduler, snapshot images, and
//! — since the state-region refactor — one [`Region`] per domain holding
//! that domain's grant table, event ports, and console ring. It exposes
//! exactly one entry point for guest-initiated action:
//! [`Hypervisor::hypercall`]. All access-control decisions are made there,
//! which is what lets Xoar express both platforms with one mechanism:
//!
//! * **stock Xen**: Dom0 is created with [`PrivilegeSet::dom0`] (every
//!   privileged call whitelisted, blanket foreign mapping);
//! * **Xoar**: each shard is created with exactly the calls it needs
//!   (Figure 3.1's `permit_hypercall`), the Builder alone may map foreign
//!   memory, and management calls are audited against the parent-toolstack
//!   flag (§5.6).
//!
//! Inter-VM communication policy (§5.6) is enforced on the grant and
//! event-channel paths: a guest may only establish IVC with a shard that
//! has been *delegated* to it; guest↔guest channels are refused.

use std::collections::BTreeSet;

use crate::fasthash::{FastMap, FastSet};

use crate::domain::{DomId, Domain, DomainRole, DomainState};
use crate::error::{HvError, HvResult};
use crate::event::{PendingEvent, VirqKind};
use crate::grant::{GrantAccess, GrantRef, GrantTable};
use crate::hypercall::{Hypercall, HypercallId, HypercallRet};
use crate::memory::{MemoryManager, Pfn};
use crate::privilege::PrivilegeSet;
use crate::region::Region;
use crate::sched::CreditScheduler;
use crate::snapshot::{RecoveryBox, SnapshotManager};
use crate::xregion;

/// A declared cross-region sharing edge: `(kind, subject, object)`.
///
/// Kinds match [`crate::xregion::CrossRegionOp::kind`] plus the
/// privilege-derived `"blanket"` (map-foreign-any, object is
/// `DomId(u32::MAX)` meaning "anyone"). The analyzer audits the
/// reachability matrix against this set.
pub type DeclaredOps = BTreeSet<(&'static str, DomId, DomId)>;

/// An observer attached to the hypercall gate.
///
/// This is the seam the executable isolation spec hangs off: a hook
/// sees every *permitted* hypercall immediately after dispatch, with
/// the call as issued and the result it produced, and may read (never
/// mutate) the hypervisor to compare real state against its own model.
/// Whitelist denials never reach the hook — a denied call changes no
/// state, so there is nothing to keep in lockstep.
///
/// A hook must not panic: the gate is TCB code and the no-panic lint
/// covers the call path. Divergence is recorded and surfaced through
/// [`DispatchHook::divergence`]; the driver (a test, the analyzer's
/// small-scope enumerator) asserts on it outside the gate.
pub trait DispatchHook {
    /// Observes one completed hypercall. Runs after the operation's
    /// state changes have committed, so `hv` shows the post-state.
    fn after_hypercall(
        &mut self,
        hv: &Hypervisor,
        caller: DomId,
        call: &Hypercall,
        result: &HvResult<HypercallRet>,
    );

    /// The first divergence this hook has observed, if any.
    fn divergence(&self) -> Option<String>;
}

/// A record of one hypercall, for the audit log (§3.2.2).
#[derive(Debug, Clone)]
pub struct HypercallTrace {
    /// Simulated time of the call.
    pub at_ns: u64,
    /// Issuing domain.
    pub caller: DomId,
    /// Hypercall class.
    pub id: HypercallId,
    /// Whether it was permitted.
    pub allowed: bool,
}

/// Host hardware description.
#[derive(Debug, Clone, Copy)]
pub struct HostConfig {
    /// Machine memory in MiB.
    pub memory_mib: u64,
    /// Physical CPU count.
    pub cpus: u32,
}

impl Default for HostConfig {
    fn default() -> Self {
        // The paper's testbed: quad-core Xeon W3520, 4 GB RAM.
        HostConfig {
            memory_mib: 4096,
            cpus: 4,
        }
    }
}

/// Frames per MiB at 4 KiB pages.
pub const FRAMES_PER_MIB: u64 = 256;

/// The machine monitor.
pub struct Hypervisor {
    config: HostConfig,
    domains: FastMap<DomId, Domain>,
    next_domid: u32,
    /// Machine memory manager (global: models physically shared RAM).
    pub mem: MemoryManager,
    /// Credit scheduler.
    pub sched: CreditScheduler,
    /// Per-domain state regions (grant table, event ports, console).
    regions: FastMap<DomId, Region>,
    /// Total fresh event deliveries (clear→pending transitions).
    delivered: u64,
    /// Cross-region sharing edges declared by the operations that
    /// established them (grants, event binds). Audited by the analyzer.
    declared: FastSet<(&'static str, DomId, DomId)>,
    /// Precompiled per-template stamp plans (see [`xregion::stamp_plan`]):
    /// the grant posture a clone must be stamped with, compiled on the
    /// first clone of each sealed template and replayed thereafter.
    stamp_plans: FastMap<DomId, xregion::StampPlan>,
    snapshots: SnapshotManager,
    /// Lockstep spec-checker hook, if attached. `None` on every bench
    /// and production path: the gate pays one branch for the check.
    hook: Option<Box<dyn DispatchHook>>,
    now_ns: u64,
    tracing: bool,
    trace: Vec<HypercallTrace>,
    /// If set, a Dom0 crash reboots the whole host (stock Xen behaviour,
    /// §5.8); Xoar clears it so Bootstrapper may exit after boot.
    pub dom0_failure_is_fatal: bool,
    host_reboots: u64,
}

impl Hypervisor {
    /// Boots a hypervisor on the given host.
    pub fn new(config: HostConfig) -> Self {
        Hypervisor {
            config,
            domains: FastMap::default(),
            next_domid: 0,
            mem: MemoryManager::new(config.memory_mib * FRAMES_PER_MIB),
            sched: CreditScheduler::new(config.cpus),
            regions: FastMap::default(),
            delivered: 0,
            declared: FastSet::default(),
            stamp_plans: FastMap::default(),
            snapshots: SnapshotManager::new(),
            hook: None,
            now_ns: 0,
            tracing: false,
            trace: Vec::new(),
            dom0_failure_is_fatal: true,
            host_reboots: 0,
        }
    }

    /// Boots with the paper's testbed configuration.
    pub fn with_default_host() -> Self {
        Self::new(HostConfig::default())
    }

    // ----- clock -----

    /// Current simulated time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Advances the simulated clock.
    pub fn advance_time(&mut self, delta_ns: u64) {
        self.now_ns += delta_ns;
    }

    // ----- domain bootstrap (hypervisor-internal, not a hypercall) -----

    /// Creates the first domain directly, as Xen does for Dom0 (or Xoar's
    /// Bootstrapper) during host boot. Returns its ID (always `DomId(0)`
    /// for the first call).
    pub fn create_boot_domain(
        &mut self,
        name: impl Into<String>,
        role: DomainRole,
        memory_mib: u64,
        privileges: PrivilegeSet,
    ) -> HvResult<DomId> {
        let id = DomId(self.next_domid);
        self.next_domid += 1;
        let mut dom = Domain::new(id, name, role, memory_mib);
        dom.privileges = privileges;
        dom.created_at_ns = self.now_ns;
        self.register(dom)?;
        self.mem.populate(id, memory_mib * FRAMES_PER_MIB / 64)?;
        self.domain_mut(id)?.unpause();
        self.sched.set_runnable(id, true);
        Ok(id)
    }

    fn register(&mut self, dom: Domain) -> HvResult<()> {
        let id = dom.id;
        self.sched.add_domain(id);
        self.regions.insert(id, Region::new(id));
        self.domains.insert(id, dom);
        Ok(())
    }

    // ----- introspection -----

    /// Looks up a domain.
    pub fn domain(&self, id: DomId) -> HvResult<&Domain> {
        self.domains.get(&id).ok_or(HvError::NoSuchDomain(id))
    }

    /// Mutable domain lookup (platform layers, tests).
    pub fn domain_mut(&mut self, id: DomId) -> HvResult<&mut Domain> {
        self.domains.get_mut(&id).ok_or(HvError::NoSuchDomain(id))
    }

    /// All live domain IDs, sorted.
    pub fn domain_ids(&self) -> Vec<DomId> {
        let mut v: Vec<DomId> = self
            .domains
            .iter()
            .filter(|(_, d)| d.state != DomainState::Dead)
            .map(|(&id, _)| id)
            .collect();
        v.sort_unstable();
        v
    }

    /// Number of live domains.
    pub fn domain_count(&self) -> usize {
        self.domain_ids().len()
    }

    /// Grant table of a domain (read-only, for audit).
    pub fn grant_table(&self, dom: DomId) -> Option<&GrantTable> {
        self.regions.get(&dom).map(|r| r.grant_table())
    }

    /// Read-only view of a domain's state region.
    pub fn region(&self, dom: DomId) -> Option<&Region> {
        self.regions.get(&dom)
    }

    fn region_mut(&mut self, id: DomId) -> HvResult<&mut Region> {
        self.regions.get_mut(&id).ok_or(HvError::NoSuchDomain(id))
    }

    /// Records a declared cross-region sharing edge. Event channels are
    /// bidirectional, so their edges are stored endpoint-normalized.
    fn declare(&mut self, kind: &'static str, subject: DomId, object: DomId) {
        Self::declare_into(&mut self.declared, kind, subject, object);
    }

    /// [`Self::declare`] as an associated function, for call sites that
    /// hold disjoint borrows of other hypervisor fields.
    fn declare_into(
        declared: &mut FastSet<(&'static str, DomId, DomId)>,
        kind: &'static str,
        subject: DomId,
        object: DomId,
    ) {
        if kind == "event" {
            let (a, b) = (subject.min(object), subject.max(object));
            declared.insert((kind, a, b));
        } else {
            declared.insert((kind, subject, object));
        }
    }

    /// The declared cross-region sharing edges, including edges derived
    /// from live privilege state: `("blanket", d, DomId(u32::MAX))` for
    /// every domain holding map-foreign-any, `("foreign", s, o)` for
    /// every `privileged_for` pair, and `("grant", grantee, clone)` for
    /// every grant a live clone was stamped with (read off the
    /// template's plan, so the snapshot-fork hot path records nothing
    /// per clone). The analyzer's `no-undeclared-cross-region-access`
    /// rule audits the reachability matrix against this set.
    pub fn declared_ops(&self) -> DeclaredOps {
        // The live set is hashed (declare sits on hypercall hot paths);
        // the audit view is materialised ordered, per call.
        let mut set: DeclaredOps = self.declared.iter().copied().collect();
        for (id, d) in &self.domains {
            if d.state == DomainState::Dead {
                continue;
            }
            if d.privileges.map_foreign_any {
                set.insert(("blanket", *id, DomId(u32::MAX)));
            }
            for &obj in &d.privileged_for {
                set.insert(("foreign", *id, obj));
            }
            if let Some(tpl) = self.mem.template_of(*id) {
                if let Some(plan) = self.stamp_plans.get(&tpl) {
                    for &(grantee, _, _) in &plan.entries {
                        set.insert(("grant", grantee, *id));
                    }
                }
            }
        }
        set
    }

    // ----- event-channel facade (per-region state, hypervisor view) -----

    /// Dequeues `dom`'s lowest-numbered pending event.
    pub fn poll_event(&mut self, dom: DomId) -> Option<PendingEvent> {
        self.regions.get_mut(&dom)?.poll()
    }

    /// Drains all of `dom`'s pending events, in port order.
    pub fn drain_pending(&mut self, dom: DomId) -> Vec<PendingEvent> {
        let mut out = Vec::new();
        self.drain_pending_into(dom, &mut out);
        out
    }

    /// Drains all of `dom`'s pending events into `out` in port order.
    pub fn drain_pending_into(&mut self, dom: DomId, out: &mut Vec<PendingEvent>) -> usize {
        self.regions
            .get_mut(&dom)
            .map_or(0, |r| r.drain_pending_into(out))
    }

    /// Number of distinct pending ports on `dom`.
    pub fn pending_count(&self, dom: DomId) -> usize {
        self.regions.get(&dom).map_or(0, |r| r.pending_count())
    }

    /// Total fresh event deliveries since boot (or the last event reset).
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Sorted, deduplicated interdomain peers of `dom`.
    pub fn peers_of(&self, dom: DomId) -> Vec<DomId> {
        self.regions
            .get(&dom)
            .map_or(Vec::new(), |r| r.event_peers())
    }

    /// Whether `dom`'s `port` is connected to a live interdomain peer.
    pub fn event_connected(&self, dom: DomId, port: u32) -> bool {
        self.regions
            .get(&dom)
            .is_some_and(|r| r.event_connected(port))
    }

    /// Masks or unmasks event delivery for `dom` (masking defers).
    pub fn set_event_mask(&mut self, dom: DomId, masked: bool) {
        if let Some(r) = self.regions.get_mut(&dom) {
            r.set_event_mask(masked);
        }
    }

    /// Resets every region's event half to its freshly-registered state
    /// (the hypervisor-microreboot seam used by `rehype`).
    pub fn reset_event_channels(&mut self) {
        for r in self.regions.values_mut() {
            r.reset_events();
        }
        self.delivered = 0;
    }

    /// Times the host was rebooted by a fatal control-VM failure.
    pub fn host_reboot_count(&self) -> u64 {
        self.host_reboots
    }

    /// Host configuration.
    pub fn host_config(&self) -> HostConfig {
        self.config
    }

    // ----- tracing -----

    /// Enables or disables hypercall tracing.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// Drains the accumulated trace records.
    pub fn take_trace(&mut self) -> Vec<HypercallTrace> {
        std::mem::take(&mut self.trace)
    }

    fn record(&mut self, caller: DomId, id: HypercallId, allowed: bool) {
        if self.tracing {
            self.trace.push(HypercallTrace {
                at_ns: self.now_ns,
                caller,
                id,
                allowed,
            });
        }
    }

    // ----- access-control helpers -----

    fn check_whitelist(&self, caller: DomId, id: HypercallId) -> HvResult<()> {
        let dom = self.domain(caller)?;
        if !dom.state.can_issue_hypercalls() {
            return Err(HvError::InvalidDomainState {
                dom: caller,
                expected: "Running",
            });
        }
        if dom.privileges.permits_hypercall(id) {
            Ok(())
        } else {
            Err(HvError::PermissionDenied {
                caller,
                privilege: format!("hypercall {}", id.name()),
            })
        }
    }

    /// Management check of §5.6: privileged VM-management hypercalls are
    /// audited against the parent-toolstack flag (or explicit delegation).
    fn check_management(&self, caller: DomId, target: DomId) -> HvResult<()> {
        let t = self.domain(target)?;
        let c = self.domain(caller)?;
        if t.parent_toolstack == Some(caller)
            || t.privileges.delegated_to.contains(&caller)
            || c.privileges.map_foreign_any
        {
            Ok(())
        } else {
            Err(HvError::PermissionDenied {
                caller,
                privilege: format!("management of {target}"),
            })
        }
    }

    /// IVC policy of §5.6: sharing requires one end to be a shard, and a
    /// guest end must have that shard delegated to it.
    fn check_ivc(&self, a: DomId, b: DomId) -> HvResult<()> {
        let da = self.domain(a)?;
        let db = self.domain(b)?;
        let ok = match (da.is_shard(), db.is_shard()) {
            (true, true) => true,
            (true, false) => db.delegated_shards.contains(&a),
            (false, true) => da.delegated_shards.contains(&b),
            (false, false) => false,
        };
        if ok {
            Ok(())
        } else {
            Err(HvError::PermissionDenied {
                caller: a,
                privilege: format!("IVC between {a} and {b} (not a delegated shard pair)"),
            })
        }
    }

    fn check_foreign_access(&self, caller: DomId, target: DomId) -> HvResult<()> {
        let c = self.domain(caller)?;
        if c.privileges.map_foreign_any || c.privileged_for.contains(&target) {
            Ok(())
        } else {
            Err(HvError::PermissionDenied {
                caller,
                privilege: format!("foreign mapping of {target}"),
            })
        }
    }

    // ----- the hypercall gate -----

    /// Dispatches a hypercall from `caller`.
    ///
    /// This is the single trap gate of the platform: whitelist check
    /// first, then per-argument access control, then the operation.
    pub fn hypercall(&mut self, caller: DomId, call: Hypercall) -> HvResult<HypercallRet> {
        let id = call.id();
        if let Err(e) = self.check_whitelist(caller, id) {
            self.record(caller, id, false);
            return Err(e);
        }
        if self.hook.is_some() {
            return self.hypercall_observed(caller, call);
        }
        let result = self.dispatch(caller, call);
        self.record(caller, id, result.is_ok());
        result
    }

    /// The observed slow path of the gate: clone the call (the hook
    /// needs it after dispatch consumes it), dispatch, then let the
    /// detached hook read the post-state. Outlined so the common
    /// hook-less dispatch pays exactly one predicted-not-taken branch.
    #[inline(never)]
    fn hypercall_observed(&mut self, caller: DomId, call: Hypercall) -> HvResult<HypercallRet> {
        let id = call.id();
        let observed = call.clone();
        let result = self.dispatch(caller, call);
        self.record(caller, id, result.is_ok());
        // Take/put-back: the hook borrows `self` immutably while it is
        // not reachable through `self`, so no aliasing.
        if let Some(mut hook) = self.hook.take() {
            hook.after_hypercall(self, caller, &observed, &result);
            self.hook = Some(hook);
        }
        result
    }

    /// Attaches a lockstep dispatch hook (replacing any previous one).
    pub fn set_dispatch_hook(&mut self, hook: Box<dyn DispatchHook>) {
        self.hook = Some(hook);
    }

    /// Detaches and returns the dispatch hook, if one is attached.
    pub fn take_dispatch_hook(&mut self) -> Option<Box<dyn DispatchHook>> {
        self.hook.take()
    }

    /// Read-only view of the attached dispatch hook.
    pub fn dispatch_hook(&self) -> Option<&dyn DispatchHook> {
        self.hook.as_deref()
    }

    fn dispatch(&mut self, caller: DomId, call: Hypercall) -> HvResult<HypercallRet> {
        use Hypercall::*;
        match call {
            EvtchnAllocUnbound { remote } => {
                self.check_ivc(caller, remote)?;
                let port = self.region_mut(caller)?.alloc_unbound(remote)?;
                Ok(HypercallRet::Port(port))
            }
            EvtchnBindInterdomain {
                remote,
                remote_port,
            } => {
                self.check_ivc(caller, remote)?;
                let port =
                    xregion::bind_interdomain(&mut self.regions, caller, remote, remote_port)?;
                self.declare("event", caller, remote);
                Ok(HypercallRet::Port(port))
            }
            EvtchnBindVirq { virq } => {
                let port = self.region_mut(caller)?.bind_virq(virq)?;
                Ok(HypercallRet::Port(port))
            }
            EvtchnSend { port } => {
                xregion::event_send(&mut self.regions, &mut self.delivered, caller, port)?;
                Ok(HypercallRet::Ok)
            }
            EvtchnClose { port } => {
                xregion::event_close(&mut self.regions, caller, port)?;
                Ok(HypercallRet::Ok)
            }
            GnttabGrantAccess {
                grantee,
                pfn,
                access,
            } => {
                self.check_ivc(caller, grantee)?;
                // A deduplicated frame must never be exported: break CoW
                // sharing before granting. Installing the entry in the
                // caller's own table is intra-region.
                let mfn = self.mem.exclusive_mfn(caller, pfn)?;
                let gref = self
                    .region_mut(caller)?
                    .grants
                    .grant(grantee, pfn, mfn, access)?;
                self.declare("grant", grantee, caller);
                Ok(HypercallRet::GrantRef(gref))
            }
            GnttabEndAccess { gref } => {
                self.region_mut(caller)?.grants.end_access(gref)?;
                Ok(HypercallRet::Ok)
            }
            GnttabGrantTransfer { grantee, pfn } => {
                self.check_ivc(caller, grantee)?;
                let mfn = self.mem.exclusive_mfn(caller, pfn)?;
                let gref = self
                    .region_mut(caller)?
                    .grants
                    .grant_transfer(grantee, pfn, mfn)?;
                self.declare("grant", grantee, caller);
                Ok(HypercallRet::GrantRef(gref))
            }
            GnttabAcceptTransfer { granter, gref } => {
                let new_pfn = xregion::accept_transfer(
                    &mut self.regions,
                    &mut self.mem,
                    caller,
                    granter,
                    gref,
                )?;
                Ok(HypercallRet::Pfn(new_pfn))
            }
            GnttabMapGrantRef { granter, gref } => {
                let mfn =
                    xregion::grant_map(&mut self.regions, &mut self.mem, caller, granter, gref)?;
                Ok(HypercallRet::Mfn(mfn))
            }
            GnttabUnmapGrantRef { granter, gref } => {
                xregion::grant_unmap(&mut self.regions, &mut self.mem, caller, granter, gref)?;
                Ok(HypercallRet::Ok)
            }
            GnttabMapBatch { granter, refs } => Ok(HypercallRet::GrantBatch(
                xregion::grant_map_batch(&mut self.regions, &mut self.mem, caller, granter, &refs)?,
            )),
            GnttabUnmapBatch { granter, refs } => {
                Ok(HypercallRet::GrantBatch(xregion::grant_unmap_batch(
                    &mut self.regions,
                    &mut self.mem,
                    caller,
                    granter,
                    &refs,
                )?))
            }
            GnttabCopyBatch { granter, ops } => Ok(HypercallRet::GrantBatch(
                xregion::grant_copy_batch(&mut self.regions, &mut self.mem, caller, granter, &ops)?,
            )),
            GnttabForeignSetup {
                owner,
                grantee,
                pfn,
                access,
            } => {
                // Builder-only (§5.6): install a grant in `owner`'s table.
                let gref = xregion::foreign_setup(
                    &mut self.regions,
                    &mut self.mem,
                    caller,
                    owner,
                    grantee,
                    pfn,
                    access,
                )?;
                self.declare("grant", grantee, owner);
                Ok(HypercallRet::GrantRef(gref))
            }
            DomctlCreateDomain {
                name,
                memory_mib,
                vcpus,
            } => {
                if self.mem.free_frames() < memory_mib * FRAMES_PER_MIB / 64 {
                    return Err(HvError::Memory(crate::error::MemError::OutOfFrames));
                }
                let id = DomId(self.next_domid);
                self.next_domid += 1;
                let mut dom = Domain::new(id, name, DomainRole::Guest, memory_mib);
                dom.set_vcpus(vcpus);
                dom.parent_toolstack = Some(caller);
                dom.created_at_ns = self.now_ns;
                self.register(dom)?;
                Ok(HypercallRet::DomId(id))
            }
            DomctlCloneDomain { template, name } => {
                self.check_management(caller, template)?;
                // One template read covers the seal check and the identity
                // the clone inherits (pausing below mutates none of it).
                let (state, memory_mib, vcpus, delegated, group, privs) = {
                    let t = self.domain(template)?;
                    (
                        t.state,
                        t.memory_mib,
                        t.vcpus.len() as u32,
                        t.delegated_shards.clone(),
                        t.constraint_group.clone(),
                        t.privileges.clone(),
                    )
                };
                // Seal the template: a running guest is paused in place, a
                // half-built one cannot be forked.
                match state {
                    DomainState::Paused | DomainState::Snapshotted => {}
                    DomainState::Running => {
                        self.domain_mut(template)?.state = DomainState::Paused;
                        self.sched.set_runnable(template, false);
                    }
                    _ => {
                        return Err(HvError::InvalidDomainState {
                            dom: template,
                            expected: "Running|Paused|Snapshotted",
                        })
                    }
                }
                self.mem.template_arm(template)?;
                // No free-frames admission check: a clone reserves zero frames
                // up front; OutOfFrames surfaces at first-write break time.
                let id = DomId(self.next_domid);
                self.next_domid += 1;
                let mut dom = Domain::new(id, name, DomainRole::Guest, memory_mib);
                dom.set_vcpus(vcpus);
                dom.delegated_shards = delegated;
                dom.constraint_group = group;
                dom.privileges = privs;
                dom.parent_toolstack = Some(caller);
                dom.created_at_ns = self.now_ns;
                // Born running: the clone resumes from the template's state
                // rather than waiting on a builder handshake.
                dom.unpause();
                self.register(dom)?;
                self.mem.clone_space(template, id)?;
                let plan = match self.stamp_plans.entry(template) {
                    std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(xregion::stamp_plan(&self.regions, template)?)
                    }
                };
                xregion::clone_stamp(&mut self.regions, &mut self.mem, template, id, plan)?;
                // The stamped grants' declared-sharing edges are derived in
                // `declared_ops` from the live plan, like blanket/foreign
                // edges — no per-clone bookkeeping on this path.
                self.sched.set_runnable(id, true);
                Ok(HypercallRet::DomId(id))
            }
            DomctlDestroyDomain { target } => {
                self.check_management(caller, target)?;
                self.destroy(target)?;
                Ok(HypercallRet::Ok)
            }
            DomctlPauseDomain { target } => {
                self.check_management(caller, target)?;
                let d = self.domain_mut(target)?;
                if d.state != DomainState::Running {
                    return Err(HvError::InvalidDomainState {
                        dom: target,
                        expected: "Running",
                    });
                }
                d.state = DomainState::Paused;
                self.sched.set_runnable(target, false);
                Ok(HypercallRet::Ok)
            }
            DomctlUnpauseDomain { target } => {
                self.check_management(caller, target)?;
                let d = self.domain_mut(target)?;
                match d.state {
                    DomainState::Building | DomainState::Paused | DomainState::Snapshotted => {
                        d.unpause();
                        self.sched.set_runnable(target, true);
                        Ok(HypercallRet::Ok)
                    }
                    _ => Err(HvError::InvalidDomainState {
                        dom: target,
                        expected: "Building|Paused|Snapshotted",
                    }),
                }
            }
            DomctlSetMaxMem { target, memory_mib } => {
                self.check_management(caller, target)?;
                self.domain_mut(target)?.memory_mib = memory_mib;
                Ok(HypercallRet::Ok)
            }
            DomctlSetVcpus { target, vcpus } => {
                self.check_management(caller, target)?;
                self.domain_mut(target)?.set_vcpus(vcpus);
                Ok(HypercallRet::Ok)
            }
            DomctlAssignDevice { target, device } => {
                self.check_management(caller, target)?;
                // A device may be passed through to at most one domain.
                for (id, d) in &self.domains {
                    if *id != target
                        && d.state != DomainState::Dead
                        && d.privileges.pci_devices.contains(&device)
                    {
                        return Err(HvError::AlreadyAssigned(format!(
                            "PCI device {device} already assigned to {id}"
                        )));
                    }
                }
                self.domain_mut(target)?
                    .privileges
                    .assign_pci_device(device);
                Ok(HypercallRet::Ok)
            }
            DomctlDelegate { target, manager } => {
                self.check_management(caller, target)?;
                self.domain(manager)?;
                let t = self.domain_mut(target)?;
                t.privileges.allow_delegation(manager);
                if t.parent_toolstack.is_none() || t.parent_toolstack == Some(caller) {
                    t.parent_toolstack = Some(manager);
                }
                Ok(HypercallRet::Ok)
            }
            DomctlSetRole { target, shard } => {
                self.check_management(caller, target)?;
                self.domain_mut(target)?.role = if shard {
                    DomainRole::Shard
                } else {
                    DomainRole::Guest
                };
                Ok(HypercallRet::Ok)
            }
            DomctlSetPrivilegedFor { subject, object } => {
                self.check_management(caller, subject)?;
                self.domain(object)?;
                self.domain_mut(subject)?.privileged_for.insert(object);
                Ok(HypercallRet::Ok)
            }
            DomctlIoPortPermission { target, range } => {
                self.check_management(caller, target)?;
                self.domain_mut(target)?.privileges.io_ports.insert(range);
                Ok(HypercallRet::Ok)
            }
            DomctlMmioPermission { target, range } => {
                self.check_management(caller, target)?;
                self.domain_mut(target)?.privileges.mmio.insert(range);
                Ok(HypercallRet::Ok)
            }
            DomctlIrqPermission { target, irq } => {
                self.check_management(caller, target)?;
                self.domain_mut(target)?.privileges.irqs.insert(irq);
                Ok(HypercallRet::Ok)
            }
            DomctlPermitHypercall { target, id } => {
                self.check_management(caller, target)?;
                // Privilege amplification guard: a domain may only hand out
                // privileges it holds itself. Blanket-privileged domains
                // (Dom0, the boot-time Bootstrapper) are outside the
                // least-privilege regime and exempt.
                let c = self.domain(caller)?;
                if !c.privileges.map_foreign_any && !c.privileges.permits_hypercall(id) {
                    return Err(HvError::PermissionDenied {
                        caller,
                        privilege: format!("granting {} without holding it", id.name()),
                    });
                }
                self.domain_mut(target)?.privileges.permit_hypercall(id);
                Ok(HypercallRet::Ok)
            }
            MemoryPopulate { target, frames } => {
                self.check_management(caller, target)?;
                let d = self.domain(target)?;
                if d.state != DomainState::Building {
                    return Err(HvError::InvalidDomainState {
                        dom: target,
                        expected: "Building",
                    });
                }
                let first = self.mem.populate(target, frames)?;
                let _ = first;
                Ok(HypercallRet::Ok)
            }
            MmuMapForeign { target, pfn } => {
                self.check_foreign_access(caller, target)?;
                let mfn = xregion::foreign_map(&mut self.mem, caller, target, pfn)?;
                Ok(HypercallRet::Mfn(mfn))
            }
            MmuWriteForeign { target, pfn, data } => {
                self.check_foreign_access(caller, target)?;
                xregion::foreign_write(&mut self.mem, caller, target, pfn, &data)?;
                Ok(HypercallRet::Ok)
            }
            VmSnapshot => {
                let now = self.now_ns;
                self.snapshots.snapshot(caller, &mut self.mem, now)?;
                Ok(HypercallRet::Ok)
            }
            VmRollback { target } => {
                self.check_management(caller, target)?;
                let restored =
                    xregion::rollback(&mut self.snapshots, &mut self.mem, caller, target)?;
                let d = self.domain_mut(target)?;
                d.restart_count += 1;
                Ok(HypercallRet::Count(restored))
            }
            SysctlPhysinfo => Ok(HypercallRet::Physinfo {
                total_frames: self.mem.total_frames(),
                free_frames: self.mem.free_frames(),
                cpus: self.config.cpus,
            }),
            SchedYield => Ok(HypercallRet::Ok),
            ConsoleWrite { data } => {
                self.region_mut(caller)?.console_write(&data);
                Ok(HypercallRet::Ok)
            }
            Multicall { calls } => self.multicall(caller, calls),
        }
    }

    // ----- batched hypercall bodies -----
    //
    // The grant batches live in `xregion` (they are cross-region by
    // nature); only the multicall body stays here, outlined so the batch
    // loop does not bloat the hot single-op dispatch path.

    /// The gate already did the caller lookup and liveness screen once
    /// for the whole batch; snapshot the whitelist bitset (a u64 copy)
    /// so each sub-call is screened without re-walking the domain table.
    #[inline(never)]
    fn multicall(&mut self, caller: DomId, calls: Vec<Hypercall>) -> HvResult<HypercallRet> {
        let permitted = self.domain(caller)?.privileges.hypercalls;
        let mut results = Vec::with_capacity(calls.len());
        for sub in calls {
            let sub_id = sub.id();
            if sub_id == HypercallId::Multicall {
                results.push(Err(HvError::InvalidArgument(
                    "nested multicall".to_string(),
                )));
                continue;
            }
            // Per-entry whitelist screen: a multicall must not
            // smuggle a call the caller could not issue directly.
            // Denials are recorded in the trace like direct calls
            // so the over-privilege audit sees them.
            if sub_id.is_privileged() && !permitted.contains(sub_id) {
                self.record(caller, sub_id, false);
                results.push(Err(HvError::PermissionDenied {
                    caller,
                    privilege: format!("hypercall {}", sub_id.name()),
                }));
                continue;
            }
            let r = self.dispatch(caller, sub);
            self.record(caller, sub_id, r.is_ok());
            results.push(r);
        }
        Ok(HypercallRet::Multi(results))
    }

    // ----- non-hypercall services -----

    /// Registers a recovery box for `dom` (issued by the domain itself
    /// during initialisation, before `vm_snapshot()`).
    pub fn register_recovery_box(&mut self, dom: DomId, rbox: RecoveryBox) -> HvResult<()> {
        self.domain(dom)?;
        self.snapshots.register_recovery_box(dom, rbox);
        Ok(())
    }

    /// Whether `dom` holds a snapshot image.
    pub fn has_snapshot(&self, dom: DomId) -> bool {
        self.snapshots.has_snapshot(dom)
    }

    /// Rollback count of `dom`'s image (0 if none).
    pub fn rollback_count(&self, dom: DomId) -> u64 {
        self.snapshots.image(dom).map_or(0, |i| i.rollback_count)
    }

    /// Drains a domain's console output (used by the console service).
    pub fn console_take(&mut self, dom: DomId) -> Vec<u8> {
        self.regions
            .get_mut(&dom)
            .map(|r| r.console_take())
            .unwrap_or_default()
    }

    /// Raises a VIRQ (hypervisor-originated interrupt delivery).
    pub fn raise_virq(&mut self, dom: DomId, virq: VirqKind) -> bool {
        match self.regions.get_mut(&dom).and_then(|r| r.raise_virq(virq)) {
            Some(fresh) => {
                if fresh {
                    self.delivered += 1;
                }
                true
            }
            None => false,
        }
    }

    /// Checks a trapped I/O-port access by `dom` (§5.8: the hypervisor
    /// "sets up MMIO and I/O-port privileges" — hard-coded to Dom0 in
    /// stock Xen, remapped to the Console Manager and PCIBack in Xoar).
    pub fn check_io_port(&self, dom: DomId, port: u16) -> HvResult<()> {
        let d = self.domain(dom)?;
        if d.privileges.permits_io_port(port) {
            Ok(())
        } else {
            Err(HvError::PermissionDenied {
                caller: dom,
                privilege: format!("I/O port {port:#x}"),
            })
        }
    }

    /// Checks a trapped MMIO access by `dom` to machine frame `mfn`.
    pub fn check_mmio(&self, dom: DomId, mfn: u64) -> HvResult<()> {
        let d = self.domain(dom)?;
        if d.privileges.permits_mmio(mfn) {
            Ok(())
        } else {
            Err(HvError::PermissionDenied {
                caller: dom,
                privilege: format!("MMIO frame {mfn:#x}"),
            })
        }
    }

    /// Simulates the crash of a domain.
    ///
    /// If the crashed domain is Dom0 and [`Self::dom0_failure_is_fatal`] is
    /// set (stock Xen, §5.8), the whole host reboots: every domain dies.
    /// Otherwise only the crashed domain is destroyed.
    pub fn crash_domain(&mut self, dom: DomId) -> HvResult<()> {
        self.domain(dom)?;
        if dom.is_dom0() && self.dom0_failure_is_fatal {
            self.host_reboots += 1;
            let mut ids = self.domain_ids();
            // Clones first: a template with live clones refuses to die.
            ids.sort_by_key(|&id| (self.mem.template_of(id).is_none(), id));
            for id in ids {
                let _ = self.destroy(id);
            }
        } else {
            self.destroy(dom)?;
        }
        Ok(())
    }

    fn destroy(&mut self, target: DomId) -> HvResult<()> {
        // A sealed template's frames back every live clone's address space;
        // it cannot be torn down until the last clone is gone.
        if self.mem.template_clones(target).unwrap_or(0) > 0 {
            return Err(HvError::InvalidDomainState {
                dom: target,
                expected: "template with no live clones",
            });
        }
        let d = self.domain_mut(target)?;
        if d.state == DomainState::Dead {
            return Err(HvError::InvalidDomainState {
                dom: target,
                expected: "not already Dead",
            });
        }
        d.state = DomainState::Dead;
        self.sched.remove_domain(target);
        xregion::teardown(&mut self.regions, target);
        self.mem.release_domain(target);
        self.snapshots.discard(target);
        self.stamp_plans.remove(&target);
        Ok(())
    }

    // ----- convenience wrappers used by the platform layers -----

    /// Issues `GnttabForeignSetup` semantics directly for boot-time wiring
    /// performed by the hypervisor itself (before any builder exists).
    pub fn boot_grant(
        &mut self,
        owner: DomId,
        grantee: DomId,
        pfn: Pfn,
        access: GrantAccess,
    ) -> HvResult<GrantRef> {
        let mfn = self.mem.exclusive_mfn(owner, pfn)?;
        let gref = self
            .region_mut(owner)?
            .grants
            .grant(grantee, pfn, mfn, access)?;
        self.declare("grant", grantee, owner);
        Ok(gref)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::PAGE_SIZE;

    /// Builds a hypervisor with a Dom0-style control VM.
    pub(super) fn xen_like() -> (Hypervisor, DomId) {
        let mut hv = Hypervisor::with_default_host();
        let dom0 = hv
            .create_boot_domain("dom0", DomainRole::ControlVm, 750, PrivilegeSet::dom0())
            .unwrap();
        (hv, dom0)
    }

    pub(super) fn build_guest(hv: &mut Hypervisor, dom0: DomId, name: &str) -> DomId {
        let id = hv
            .hypercall(
                dom0,
                Hypercall::DomctlCreateDomain {
                    name: name.into(),
                    memory_mib: 64,
                    vcpus: 1,
                },
            )
            .unwrap()
            .dom_id()
            .unwrap();
        hv.hypercall(
            dom0,
            Hypercall::MemoryPopulate {
                target: id,
                frames: 16,
            },
        )
        .unwrap();
        hv.hypercall(dom0, Hypercall::DomctlUnpauseDomain { target: id })
            .unwrap();
        // Let the guest talk to the control VM (split drivers, xenstore).
        hv.domain_mut(id).unwrap().delegated_shards.insert(dom0);
        id
    }

    #[test]
    fn dom0_is_domid_zero() {
        let (_, dom0) = xen_like();
        assert_eq!(dom0, DomId::DOM0);
    }

    #[test]
    fn guest_cannot_issue_privileged_hypercalls() {
        let (mut hv, dom0) = xen_like();
        let g = build_guest(&mut hv, dom0, "guest");
        let err = hv
            .hypercall(
                g,
                Hypercall::DomctlCreateDomain {
                    name: "evil".into(),
                    memory_mib: 64,
                    vcpus: 1,
                },
            )
            .unwrap_err();
        assert!(matches!(err, HvError::PermissionDenied { .. }));
    }

    #[test]
    fn guest_cannot_map_foreign_memory() {
        let (mut hv, dom0) = xen_like();
        let a = build_guest(&mut hv, dom0, "a");
        let b = build_guest(&mut hv, dom0, "b");
        let err = hv
            .hypercall(
                a,
                Hypercall::MmuMapForeign {
                    target: b,
                    pfn: Pfn(0),
                },
            )
            .unwrap_err();
        assert!(matches!(err, HvError::PermissionDenied { .. }));
    }

    #[test]
    fn dom0_can_map_and_write_guest_memory() {
        let (mut hv, dom0) = xen_like();
        let g = build_guest(&mut hv, dom0, "guest");
        hv.hypercall(
            dom0,
            Hypercall::MmuWriteForeign {
                target: g,
                pfn: Pfn(0),
                data: b"start-info".to_vec(),
            },
        )
        .unwrap();
        assert_eq!(hv.mem.read(g, Pfn(0)).unwrap(), b"start-info");
    }

    #[test]
    fn privileged_for_edge_allows_limited_foreign_mapping() {
        let (mut hv, dom0) = xen_like();
        let qemu = build_guest(&mut hv, dom0, "qemu-stub");
        let hvm = build_guest(&mut hv, dom0, "hvm-guest");
        // Without the flag: denied.
        assert!(hv
            .hypercall(
                qemu,
                Hypercall::MmuMapForeign {
                    target: hvm,
                    pfn: Pfn(0)
                }
            )
            .is_err());
        // Grant MmuMapForeign + the privileged_for edge (as the Builder
        // does for QEMU stub domains, §5.6).
        hv.hypercall(
            dom0,
            Hypercall::DomctlPermitHypercall {
                target: qemu,
                id: HypercallId::MmuMapForeign,
            },
        )
        .unwrap();
        hv.hypercall(
            dom0,
            Hypercall::DomctlSetPrivilegedFor {
                subject: qemu,
                object: hvm,
            },
        )
        .unwrap();
        assert!(hv
            .hypercall(
                qemu,
                Hypercall::MmuMapForeign {
                    target: hvm,
                    pfn: Pfn(0)
                }
            )
            .is_ok());
        // But not of any *other* domain.
        let other = build_guest(&mut hv, dom0, "other");
        assert!(hv
            .hypercall(
                qemu,
                Hypercall::MmuMapForeign {
                    target: other,
                    pfn: Pfn(0)
                }
            )
            .is_err());
    }

    #[test]
    fn guest_to_guest_ivc_refused() {
        let (mut hv, dom0) = xen_like();
        let a = build_guest(&mut hv, dom0, "a");
        let b = build_guest(&mut hv, dom0, "b");
        let err = hv
            .hypercall(a, Hypercall::EvtchnAllocUnbound { remote: b })
            .unwrap_err();
        assert!(matches!(err, HvError::PermissionDenied { .. }));
    }

    #[test]
    fn guest_to_delegated_shard_ivc_allowed() {
        let (mut hv, dom0) = xen_like();
        let g = build_guest(&mut hv, dom0, "g");
        let port = hv
            .hypercall(g, Hypercall::EvtchnAllocUnbound { remote: dom0 })
            .unwrap()
            .port()
            .unwrap();
        let p0 = hv
            .hypercall(
                dom0,
                Hypercall::EvtchnBindInterdomain {
                    remote: g,
                    remote_port: port,
                },
            )
            .unwrap()
            .port()
            .unwrap();
        hv.hypercall(g, Hypercall::EvtchnSend { port }).unwrap();
        assert_eq!(hv.poll_event(dom0).unwrap().port, p0);
    }

    #[test]
    fn guest_to_undelegated_shard_ivc_refused() {
        let (mut hv, dom0) = xen_like();
        // A second shard the guest was never delegated.
        let other_backend = hv
            .create_boot_domain("netback2", DomainRole::Shard, 128, PrivilegeSet::default())
            .unwrap();
        let g = build_guest(&mut hv, dom0, "g");
        let err = hv
            .hypercall(
                g,
                Hypercall::EvtchnAllocUnbound {
                    remote: other_backend,
                },
            )
            .unwrap_err();
        assert!(matches!(err, HvError::PermissionDenied { .. }));
    }

    #[test]
    fn grant_path_checks_ivc_policy() {
        let (mut hv, dom0) = xen_like();
        let a = build_guest(&mut hv, dom0, "a");
        let b = build_guest(&mut hv, dom0, "b");
        // Guest→guest grant refused...
        assert!(hv
            .hypercall(
                a,
                Hypercall::GnttabGrantAccess {
                    grantee: b,
                    pfn: Pfn(0),
                    access: GrantAccess::ReadWrite,
                }
            )
            .is_err());
        // ...guest→delegated-shard grant allowed, and dom0 can map it.
        let gref = hv
            .hypercall(
                a,
                Hypercall::GnttabGrantAccess {
                    grantee: dom0,
                    pfn: Pfn(0),
                    access: GrantAccess::ReadWrite,
                },
            )
            .unwrap()
            .grant_ref()
            .unwrap();
        hv.hypercall(dom0, Hypercall::GnttabMapGrantRef { granter: a, gref })
            .unwrap();
    }

    #[test]
    fn management_gated_on_parent_toolstack() {
        let (mut hv, _dom0) = xen_like();
        // Two "toolstack" shards without blanket privileges.
        let mut priv_ts = PrivilegeSet::default();
        for id in [
            HypercallId::DomctlCreateDomain,
            HypercallId::DomctlDestroyDomain,
            HypercallId::DomctlPauseDomain,
            HypercallId::DomctlUnpauseDomain,
            HypercallId::MemoryPopulate,
        ] {
            priv_ts.permit_hypercall(id);
        }
        let ts1 = hv
            .create_boot_domain("toolstack-1", DomainRole::Shard, 128, priv_ts.clone())
            .unwrap();
        let ts2 = hv
            .create_boot_domain("toolstack-2", DomainRole::Shard, 128, priv_ts)
            .unwrap();
        let g = hv
            .hypercall(
                ts1,
                Hypercall::DomctlCreateDomain {
                    name: "tenant".into(),
                    memory_mib: 64,
                    vcpus: 1,
                },
            )
            .unwrap()
            .dom_id()
            .unwrap();
        // The other toolstack holds the same *hypercalls* but is not the
        // parent: per-argument check refuses it.
        let err = hv
            .hypercall(ts2, Hypercall::DomctlDestroyDomain { target: g })
            .unwrap_err();
        assert!(matches!(err, HvError::PermissionDenied { .. }));
        // The parent may destroy.
        hv.hypercall(ts1, Hypercall::DomctlDestroyDomain { target: g })
            .unwrap();
        assert_eq!(hv.domain(g).unwrap().state, DomainState::Dead);
    }

    #[test]
    fn privilege_amplification_refused() {
        let (mut hv, dom0) = xen_like();
        let mut p = PrivilegeSet::default();
        p.permit_hypercall(HypercallId::DomctlPermitHypercall);
        p.permit_hypercall(HypercallId::DomctlCreateDomain);
        let ts = hv
            .create_boot_domain("toolstack", DomainRole::Shard, 128, p)
            .unwrap();
        let g = hv
            .hypercall(
                ts,
                Hypercall::DomctlCreateDomain {
                    name: "g".into(),
                    memory_mib: 64,
                    vcpus: 1,
                },
            )
            .unwrap()
            .dom_id()
            .unwrap();
        // The toolstack does not itself hold MmuMapForeign, so it cannot
        // confer it.
        let err = hv
            .hypercall(
                ts,
                Hypercall::DomctlPermitHypercall {
                    target: g,
                    id: HypercallId::MmuMapForeign,
                },
            )
            .unwrap_err();
        assert!(matches!(err, HvError::PermissionDenied { .. }));
        let _ = dom0;
    }

    #[test]
    fn pci_device_single_assignment() {
        let (mut hv, dom0) = xen_like();
        let a = build_guest(&mut hv, dom0, "netback");
        let b = build_guest(&mut hv, dom0, "evil");
        let nic = crate::privilege::PciAddress::new(0, 2, 0);
        hv.hypercall(
            dom0,
            Hypercall::DomctlAssignDevice {
                target: a,
                device: nic,
            },
        )
        .unwrap();
        let err = hv
            .hypercall(
                dom0,
                Hypercall::DomctlAssignDevice {
                    target: b,
                    device: nic,
                },
            )
            .unwrap_err();
        assert!(matches!(err, HvError::AlreadyAssigned(_)));
    }

    #[test]
    fn snapshot_rollback_via_hypercalls() {
        let (mut hv, dom0) = xen_like();
        let g = build_guest(&mut hv, dom0, "netback");
        hv.mem.write(g, Pfn(0), b"initialized").unwrap();
        hv.hypercall(g, Hypercall::VmSnapshot).unwrap();
        hv.mem.write(g, Pfn(0), b"compromised").unwrap();
        hv.hypercall(dom0, Hypercall::VmRollback { target: g })
            .unwrap();
        assert_eq!(hv.mem.read(g, Pfn(0)).unwrap(), b"initialized");
        assert_eq!(hv.domain(g).unwrap().restart_count, 1);
        assert_eq!(hv.rollback_count(g), 1);
    }

    #[test]
    fn dom0_crash_reboots_host_in_stock_xen() {
        let (mut hv, dom0) = xen_like();
        let g = build_guest(&mut hv, dom0, "guest");
        hv.crash_domain(dom0).unwrap();
        assert_eq!(hv.host_reboot_count(), 1);
        assert_eq!(hv.domain(g).unwrap().state, DomainState::Dead);
    }

    #[test]
    fn shard_crash_is_contained_when_not_fatal() {
        let (mut hv, dom0) = xen_like();
        hv.dom0_failure_is_fatal = false;
        let g = build_guest(&mut hv, dom0, "guest");
        hv.crash_domain(dom0).unwrap();
        assert_eq!(hv.host_reboot_count(), 0);
        assert_eq!(hv.domain(g).unwrap().state, DomainState::Running);
    }

    #[test]
    fn paused_domain_cannot_hypercall() {
        let (mut hv, dom0) = xen_like();
        let g = build_guest(&mut hv, dom0, "g");
        hv.hypercall(dom0, Hypercall::DomctlPauseDomain { target: g })
            .unwrap();
        let err = hv.hypercall(g, Hypercall::SchedYield).unwrap_err();
        assert!(matches!(err, HvError::InvalidDomainState { .. }));
    }

    #[test]
    fn console_write_and_drain() {
        let (mut hv, dom0) = xen_like();
        let g = build_guest(&mut hv, dom0, "g");
        hv.hypercall(
            g,
            Hypercall::ConsoleWrite {
                data: b"Linux version 2.6.31\n".to_vec(),
            },
        )
        .unwrap();
        assert_eq!(hv.console_take(g), b"Linux version 2.6.31\n");
        assert!(hv.console_take(g).is_empty());
    }

    #[test]
    fn tracing_records_denied_calls() {
        let (mut hv, dom0) = xen_like();
        let g = build_guest(&mut hv, dom0, "g");
        hv.set_tracing(true);
        let _ = hv.hypercall(g, Hypercall::SysctlPhysinfo);
        let trace = hv.take_trace();
        assert_eq!(trace.len(), 1);
        assert!(!trace[0].allowed);
        assert_eq!(trace[0].caller, g);
    }

    #[test]
    fn physinfo_reports_host() {
        let (mut hv, dom0) = xen_like();
        match hv.hypercall(dom0, Hypercall::SysctlPhysinfo).unwrap() {
            HypercallRet::Physinfo {
                total_frames, cpus, ..
            } => {
                assert_eq!(total_frames, 4096 * FRAMES_PER_MIB);
                assert_eq!(cpus, 4);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn write_foreign_bounded_by_page() {
        let (mut hv, dom0) = xen_like();
        let g = build_guest(&mut hv, dom0, "g");
        let err = hv
            .hypercall(
                dom0,
                Hypercall::MmuWriteForeign {
                    target: g,
                    pfn: Pfn(0),
                    data: vec![0; PAGE_SIZE + 1],
                },
            )
            .unwrap_err();
        assert!(matches!(err, HvError::InvalidArgument(_)));
    }
}

#[cfg(test)]
mod transfer_hypercall_tests {
    use super::*;
    use crate::memory::Pfn;

    fn platform() -> (Hypervisor, DomId, DomId, DomId) {
        let mut hv = Hypervisor::with_default_host();
        let dom0 = hv
            .create_boot_domain("dom0", DomainRole::ControlVm, 512, PrivilegeSet::dom0())
            .unwrap();
        let g = hv
            .hypercall(
                dom0,
                Hypercall::DomctlCreateDomain {
                    name: "g".into(),
                    memory_mib: 64,
                    vcpus: 1,
                },
            )
            .unwrap()
            .dom_id()
            .unwrap();
        hv.hypercall(
            dom0,
            Hypercall::MemoryPopulate {
                target: g,
                frames: 8,
            },
        )
        .unwrap();
        hv.hypercall(dom0, Hypercall::DomctlUnpauseDomain { target: g })
            .unwrap();
        hv.domain_mut(g).unwrap().delegated_shards.insert(dom0);
        let nb = hv
            .create_boot_domain("netback", DomainRole::Shard, 128, PrivilegeSet::default())
            .unwrap();
        hv.domain_mut(g).unwrap().delegated_shards.insert(nb);
        (hv, dom0, g, nb)
    }

    #[test]
    fn page_flip_moves_ownership() {
        let (mut hv, _dom0, g, nb) = platform();
        hv.mem.write(g, Pfn(3), b"rx-buffer").unwrap();
        let owned_before_g = hv.mem.owned_frames(g);
        let owned_before_nb = hv.mem.owned_frames(nb);
        let gref = hv
            .hypercall(
                g,
                Hypercall::GnttabGrantTransfer {
                    grantee: nb,
                    pfn: Pfn(3),
                },
            )
            .unwrap()
            .grant_ref()
            .unwrap();
        let new_pfn = match hv
            .hypercall(nb, Hypercall::GnttabAcceptTransfer { granter: g, gref })
            .unwrap()
        {
            HypercallRet::Pfn(p) => p,
            other => panic!("unexpected {other:?}"),
        };
        // Contents travelled with the frame.
        assert_eq!(hv.mem.read(nb, new_pfn).unwrap(), b"rx-buffer");
        // Ownership counts moved.
        assert_eq!(hv.mem.owned_frames(g), owned_before_g - 1);
        assert_eq!(hv.mem.owned_frames(nb), owned_before_nb + 1);
        // The source can no longer touch the page.
        assert!(hv.mem.read(g, Pfn(3)).is_err());
    }

    #[test]
    fn transfer_respects_ivc_policy() {
        let (mut hv, dom0, g, _nb) = platform();
        // A second guest with no delegation relationship.
        let g2 = hv
            .hypercall(
                dom0,
                Hypercall::DomctlCreateDomain {
                    name: "g2".into(),
                    memory_mib: 64,
                    vcpus: 1,
                },
            )
            .unwrap()
            .dom_id()
            .unwrap();
        hv.hypercall(
            dom0,
            Hypercall::MemoryPopulate {
                target: g2,
                frames: 4,
            },
        )
        .unwrap();
        hv.hypercall(dom0, Hypercall::DomctlUnpauseDomain { target: g2 })
            .unwrap();
        let err = hv
            .hypercall(
                g,
                Hypercall::GnttabGrantTransfer {
                    grantee: g2,
                    pfn: Pfn(0),
                },
            )
            .unwrap_err();
        assert!(matches!(err, HvError::PermissionDenied { .. }));
    }

    #[test]
    fn only_grantee_accepts_transfer() {
        let (mut hv, dom0, g, nb) = platform();
        let gref = hv
            .hypercall(
                g,
                Hypercall::GnttabGrantTransfer {
                    grantee: nb,
                    pfn: Pfn(0),
                },
            )
            .unwrap()
            .grant_ref()
            .unwrap();
        let err = hv
            .hypercall(dom0, Hypercall::GnttabAcceptTransfer { granter: g, gref })
            .unwrap_err();
        assert!(matches!(err, HvError::Grant(_)));
        // The rightful grantee still can.
        hv.hypercall(nb, Hypercall::GnttabAcceptTransfer { granter: g, gref })
            .unwrap();
    }
}

#[cfg(test)]
mod multicall_tests {
    use super::*;
    use crate::error::{EventError, GrantError};
    use crate::grant::{GrantAccess, GrantOpStatus};

    /// Dom0, a running guest, and an unprivileged netback shard
    /// delegated to the guest.
    fn platform() -> (Hypervisor, DomId, DomId, DomId) {
        let mut hv = Hypervisor::with_default_host();
        let dom0 = hv
            .create_boot_domain("dom0", DomainRole::ControlVm, 512, PrivilegeSet::dom0())
            .unwrap();
        let g = hv
            .hypercall(
                dom0,
                Hypercall::DomctlCreateDomain {
                    name: "g".into(),
                    memory_mib: 64,
                    vcpus: 1,
                },
            )
            .unwrap()
            .dom_id()
            .unwrap();
        hv.hypercall(
            dom0,
            Hypercall::MemoryPopulate {
                target: g,
                frames: 8,
            },
        )
        .unwrap();
        hv.hypercall(dom0, Hypercall::DomctlUnpauseDomain { target: g })
            .unwrap();
        hv.domain_mut(g).unwrap().delegated_shards.insert(dom0);
        let nb = hv
            .create_boot_domain("netback", DomainRole::Shard, 128, PrivilegeSet::default())
            .unwrap();
        hv.domain_mut(g).unwrap().delegated_shards.insert(nb);
        (hv, dom0, g, nb)
    }

    #[test]
    fn multicall_runs_all_entries_without_partial_abort() {
        let (mut hv, _dom0, g, _nb) = platform();
        let ret = hv
            .hypercall(
                g,
                Hypercall::Multicall {
                    calls: vec![
                        Hypercall::SchedYield,
                        // Sending on a port the guest never opened fails...
                        Hypercall::EvtchnSend { port: 77 },
                        // ...but the entries after it still run.
                        Hypercall::SchedYield,
                    ],
                },
            )
            .unwrap()
            .multi()
            .unwrap();
        assert_eq!(ret.len(), 3);
        assert_eq!(ret[0], Ok(HypercallRet::Ok));
        assert!(matches!(
            ret[1],
            Err(HvError::Event(EventError::BadPort(77)))
        ));
        assert_eq!(ret[2], Ok(HypercallRet::Ok));
    }

    #[test]
    fn multicall_cannot_smuggle_unwhitelisted_subcall() {
        let (mut hv, _dom0, _g, nb) = platform();
        hv.set_tracing(true);
        let ret = hv
            .hypercall(
                nb,
                Hypercall::Multicall {
                    calls: vec![Hypercall::SchedYield, Hypercall::SysctlPhysinfo],
                },
            )
            .unwrap()
            .multi()
            .unwrap();
        assert_eq!(ret[0], Ok(HypercallRet::Ok));
        assert!(matches!(ret[1], Err(HvError::PermissionDenied { .. })));
        // The denied sub-call must be visible to the over-privilege
        // audit, exactly as a direct denied call would be.
        let trace = hv.take_trace();
        assert!(trace
            .iter()
            .any(|t| t.caller == nb && t.id == HypercallId::SysctlPhysinfo && !t.allowed));
        assert!(trace
            .iter()
            .any(|t| t.caller == nb && t.id == HypercallId::Multicall && t.allowed));
    }

    #[test]
    fn nested_multicall_rejected_per_entry() {
        let (mut hv, _dom0, g, _nb) = platform();
        let ret = hv
            .hypercall(
                g,
                Hypercall::Multicall {
                    calls: vec![
                        Hypercall::Multicall { calls: vec![] },
                        Hypercall::SchedYield,
                    ],
                },
            )
            .unwrap()
            .multi()
            .unwrap();
        assert!(matches!(ret[0], Err(HvError::InvalidArgument(_))));
        assert_eq!(ret[1], Ok(HypercallRet::Ok));
    }

    #[test]
    fn grant_batch_round_trip_matches_singles() {
        let (mut hv, _dom0, g, nb) = platform();
        let mut refs = Vec::new();
        for pfn in 0..4u64 {
            refs.push(
                hv.hypercall(
                    g,
                    Hypercall::GnttabGrantAccess {
                        grantee: nb,
                        pfn: Pfn(pfn),
                        access: GrantAccess::ReadWrite,
                    },
                )
                .unwrap()
                .grant_ref()
                .unwrap(),
            );
        }
        let mut batch = refs.clone();
        batch.push(GrantRef(999)); // bad entry rides along
        let batch: std::rc::Rc<[GrantRef]> = batch.into();
        let mapped = hv
            .hypercall(
                nb,
                Hypercall::GnttabMapBatch {
                    granter: g,
                    refs: batch.clone(),
                },
            )
            .unwrap()
            .grant_batch()
            .unwrap();
        assert_eq!(mapped.len(), 5);
        for r in &mapped[..4] {
            assert!(matches!(r, GrantOpStatus::Done(_)));
        }
        assert_eq!(mapped[4], GrantOpStatus::Grant(GrantError::BadRef(999)));
        let unmapped = hv
            .hypercall(
                nb,
                Hypercall::GnttabUnmapBatch {
                    granter: g,
                    refs: batch,
                },
            )
            .unwrap()
            .grant_batch()
            .unwrap();
        for (m, u) in mapped[..4].iter().zip(&unmapped[..4]) {
            assert_eq!(m, u, "unmap must release the same frame map resolved");
        }
        assert!(!unmapped[4].is_ok());
    }

    #[test]
    fn copy_batch_moves_bytes_both_ways() {
        let (mut hv, _dom0, g, nb) = platform();
        hv.mem.write(g, Pfn(1), b"from-guest").unwrap();
        let gref = hv
            .hypercall(
                g,
                Hypercall::GnttabGrantAccess {
                    grantee: nb,
                    pfn: Pfn(1),
                    access: GrantAccess::ReadWrite,
                },
            )
            .unwrap()
            .grant_ref()
            .unwrap();
        let ops = vec![crate::grant::GrantCopyOp {
            gref,
            dir: crate::grant::GrantCopyDir::FromGrant,
            local_pfn: Pfn(0),
        }];
        let ret = hv
            .hypercall(
                nb,
                Hypercall::GnttabCopyBatch {
                    granter: g,
                    ops: ops.into(),
                },
            )
            .unwrap()
            .grant_batch()
            .unwrap();
        assert!(ret[0].is_ok());
        let page = hv.mem.read(nb, Pfn(0)).unwrap();
        assert_eq!(&page.as_slice()[..10], b"from-guest");
        // And back: the shard pushes a reply into the guest's frame.
        hv.mem.write(nb, Pfn(0), b"from-shard").unwrap();
        let ops = vec![crate::grant::GrantCopyOp {
            gref,
            dir: crate::grant::GrantCopyDir::ToGrant,
            local_pfn: Pfn(0),
        }];
        let ret = hv
            .hypercall(
                nb,
                Hypercall::GnttabCopyBatch {
                    granter: g,
                    ops: ops.into(),
                },
            )
            .unwrap()
            .grant_batch()
            .unwrap();
        assert!(ret[0].is_ok());
        let page = hv.mem.read(g, Pfn(1)).unwrap();
        assert_eq!(&page.as_slice()[..10], b"from-shard");
        // Copies leave no grant mappings behind: revocation succeeds.
        hv.hypercall(g, Hypercall::GnttabEndAccess { gref })
            .unwrap();
    }
}

#[cfg(test)]
mod clone_hypercall_tests {
    use super::tests::{build_guest, xen_like};
    use super::*;

    /// Builds a guest, writes recognisable ring bytes, grants its ring page
    /// to Dom0 and returns it ready to serve as a clone template.
    fn template_guest(hv: &mut Hypervisor, dom0: DomId) -> DomId {
        let g = build_guest(hv, dom0, "template");
        hv.mem.write(g, Pfn(0), b"boot-state").unwrap();
        hv.mem.write(g, Pfn(4), b"ring-state").unwrap();
        hv.hypercall(
            dom0,
            Hypercall::GnttabForeignSetup {
                owner: g,
                grantee: dom0,
                pfn: Pfn(4),
                access: GrantAccess::ReadWrite,
            },
        )
        .unwrap();
        g
    }

    #[test]
    fn clone_hypercall_forks_a_running_guest() {
        let (mut hv, dom0) = xen_like();
        let g = template_guest(&mut hv, dom0);
        let c = hv
            .hypercall(
                dom0,
                Hypercall::DomctlCloneDomain {
                    template: g,
                    name: "fn-0".into(),
                },
            )
            .unwrap()
            .dom_id()
            .unwrap();
        // The template is sealed (paused); the clone is live.
        assert_eq!(hv.domain(g).unwrap().state, DomainState::Paused);
        assert_eq!(hv.domain(c).unwrap().state, DomainState::Running);
        assert_eq!(hv.domain(c).unwrap().parent_toolstack, Some(dom0));
        // Unbroken pages read through to the template's frames.
        let page = hv.mem.read(c, Pfn(0)).unwrap();
        assert_eq!(&page.as_slice()[..10], b"boot-state");
        // The stamped grant exposes the clone's own (privatised) ring.
        let entries = hv.regions[&c].grant_table().entries_sorted();
        assert_eq!(entries.len(), 1);
        let (_, e) = entries[0];
        assert_eq!(e.grantee, dom0);
        assert_eq!(e.pfn, Pfn(4));
        assert_eq!(e.mfn, hv.mem.translate(c, Pfn(4)).unwrap());
        assert_ne!(e.mfn, hv.mem.translate(g, Pfn(4)).unwrap());
        // The sharing is on the declared-ops ledger for the analyzer —
        // derived from the template's stamp plan, not recorded per clone.
        assert!(hv.declared_ops().contains(&("grant", dom0, c)));
        assert!(!hv.declared.contains(&("grant", dom0, c)));
    }

    #[test]
    fn clone_writes_break_frames_without_touching_the_template() {
        let (mut hv, dom0) = xen_like();
        let g = template_guest(&mut hv, dom0);
        let c = hv
            .hypercall(
                dom0,
                Hypercall::DomctlCloneDomain {
                    template: g,
                    name: "fn-0".into(),
                },
            )
            .unwrap()
            .dom_id()
            .unwrap();
        hv.mem.write(c, Pfn(0), b"clone-data").unwrap();
        assert_eq!(
            &hv.mem.read(c, Pfn(0)).unwrap().as_slice()[..10],
            b"clone-data"
        );
        assert_eq!(
            &hv.mem.read(g, Pfn(0)).unwrap().as_slice()[..10],
            b"boot-state"
        );
    }

    #[test]
    fn template_refuses_destroy_while_clones_live() {
        let (mut hv, dom0) = xen_like();
        let g = template_guest(&mut hv, dom0);
        let c = hv
            .hypercall(
                dom0,
                Hypercall::DomctlCloneDomain {
                    template: g,
                    name: "fn-0".into(),
                },
            )
            .unwrap()
            .dom_id()
            .unwrap();
        let err = hv
            .hypercall(dom0, Hypercall::DomctlDestroyDomain { target: g })
            .unwrap_err();
        assert!(matches!(err, HvError::InvalidDomainState { .. }));
        // Once the clone is gone the template can die.
        hv.hypercall(dom0, Hypercall::DomctlDestroyDomain { target: c })
            .unwrap();
        hv.hypercall(dom0, Hypercall::DomctlDestroyDomain { target: g })
            .unwrap();
    }

    #[test]
    fn host_reboot_tears_down_clones_before_templates() {
        let (mut hv, dom0) = xen_like();
        hv.dom0_failure_is_fatal = true;
        let g = template_guest(&mut hv, dom0);
        for i in 0..3 {
            hv.hypercall(
                dom0,
                Hypercall::DomctlCloneDomain {
                    template: g,
                    name: format!("fn-{i}"),
                },
            )
            .unwrap();
        }
        hv.crash_domain(dom0).unwrap();
        for id in hv.domain_ids() {
            assert_eq!(hv.domain(id).unwrap().state, DomainState::Dead);
        }
    }

    #[test]
    fn clone_of_a_building_domain_is_rejected() {
        let (mut hv, dom0) = xen_like();
        let id = hv
            .hypercall(
                dom0,
                Hypercall::DomctlCreateDomain {
                    name: "half-built".into(),
                    memory_mib: 64,
                    vcpus: 1,
                },
            )
            .unwrap()
            .dom_id()
            .unwrap();
        let err = hv
            .hypercall(
                dom0,
                Hypercall::DomctlCloneDomain {
                    template: id,
                    name: "fn-0".into(),
                },
            )
            .unwrap_err();
        assert!(matches!(err, HvError::InvalidDomainState { .. }));
    }
}
