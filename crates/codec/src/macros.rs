//! Derive-style macros implementing [`ToJson`](crate::ToJson) /
//! [`FromJson`](crate::FromJson) for the workspace's record types.
//!
//! These replace `#[derive(Serialize, Deserialize)]` at the call sites
//! and reproduce `serde_json`'s representation choices: struct fields in
//! declaration order, externally-tagged enums, transparent newtypes.

/// Implements both codec traits for a plain struct with named fields.
///
/// Fields are encoded in the order listed, which must match the struct's
/// declaration order to preserve the historical byte format. Every field
/// is required on decode unless prefixed with `[default]`, in which case
/// a missing member decodes to `Default::default()` (the
/// `#[serde(default)]` replacement).
///
/// ```
/// #[derive(Debug, PartialEq)]
/// struct Sample { a: u64, b: String }
/// xoar_codec::impl_json_struct!(Sample { a, b });
/// assert_eq!(xoar_codec::to_string(&Sample { a: 1, b: "x".into() }),
///            r#"{"a":1,"b":"x"}"#);
/// ```
#[macro_export]
macro_rules! impl_json_struct {
    ($ty:ident { $($spec:tt)* }) => {
        $crate::impl_json_struct!(@parse $ty, [] ; $($spec)*);
    };
    (@parse $ty:ident, [$($acc:tt)*] ; [default] $field:ident $(, $($rest:tt)*)?) => {
        $crate::impl_json_struct!(@parse $ty, [$($acc)* (def $field)] ; $($($rest)*)?);
    };
    (@parse $ty:ident, [$($acc:tt)*] ; $field:ident $(, $($rest:tt)*)?) => {
        $crate::impl_json_struct!(@parse $ty, [$($acc)* (req $field)] ; $($($rest)*)?);
    };
    (@parse $ty:ident, [$(($kind:ident $field:ident))+] ;) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Obj(vec![
                    $(
                        (
                            stringify!($field).to_string(),
                            $crate::ToJson::to_json(&self.$field),
                        ),
                    )+
                ])
            }
        }

        impl $crate::FromJson for $ty {
            fn from_json(value: &$crate::Json) -> Result<Self, $crate::JsonError> {
                let members = value
                    .as_obj()
                    .ok_or_else(|| $crate::JsonError::expected("object", stringify!($ty)))?;
                Ok($ty {
                    $( $field: $crate::impl_json_struct!(@get $kind members, $field)?, )+
                })
            }
        }
    };
    (@get req $members:ident, $field:ident) => {
        $crate::field($members, stringify!($field))
    };
    (@get def $members:ident, $field:ident) => {
        $crate::field_or_default($members, stringify!($field))
    };
}

/// Implements [`ToJson`](crate::ToJson) only, for structs that are
/// written but never read back (e.g. report rows holding `&'static`
/// data).
#[macro_export]
macro_rules! impl_to_json_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Obj(vec![
                    $(
                        (
                            stringify!($field).to_string(),
                            $crate::ToJson::to_json(&self.$field),
                        ),
                    )+
                ])
            }
        }
    };
}

/// Implements both codec traits for a single-field tuple struct,
/// encoding it transparently as the inner value (`DomId(6)` ⇒ `6`).
#[macro_export]
macro_rules! impl_json_newtype {
    ($ty:ident($inner:ty)) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::ToJson::to_json(&self.0)
            }
        }

        impl $crate::FromJson for $ty {
            fn from_json(value: &$crate::Json) -> Result<Self, $crate::JsonError> {
                Ok($ty(<$inner as $crate::FromJson>::from_json(value)?))
            }
        }
    };
}

/// Implements both codec traits for an enum in `serde_json`'s
/// externally-tagged representation: unit variants encode as the bare
/// variant-name string, struct variants as `{"Variant":{..fields..}}`.
///
/// ```
/// #[derive(Debug, PartialEq)]
/// enum Event { Ping, Fire { target: u64 } }
/// xoar_codec::impl_json_enum!(Event { Ping, Fire { target } });
/// assert_eq!(xoar_codec::to_string(&Event::Ping), r#""Ping""#);
/// assert_eq!(xoar_codec::to_string(&Event::Fire { target: 9 }),
///            r#"{"Fire":{"target":9}}"#);
/// ```
#[macro_export]
macro_rules! impl_json_enum {
    ($ty:ident { $($variant:ident $({ $($field:ident),+ $(,)? })?),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $( $crate::impl_json_enum!(@to self, $ty, $variant $({ $($field),+ })?); )+
                unreachable!("impl_json_enum! lists every variant")
            }
        }

        impl $crate::FromJson for $ty {
            fn from_json(value: &$crate::Json) -> Result<Self, $crate::JsonError> {
                $( $crate::impl_json_enum!(@from value, $ty, $variant $({ $($field),+ })?); )+
                Err($crate::JsonError::expected(
                    concat!("a variant of ", stringify!($ty)),
                    stringify!($ty),
                ))
            }
        }
    };
    (@to $self:ident, $ty:ident, $variant:ident) => {
        if let $ty::$variant = $self {
            return $crate::Json::Str(stringify!($variant).to_string());
        }
    };
    (@to $self:ident, $ty:ident, $variant:ident { $($field:ident),+ }) => {
        if let $ty::$variant { $($field),+ } = $self {
            return $crate::Json::Obj(vec![(
                stringify!($variant).to_string(),
                $crate::Json::Obj(vec![
                    $(
                        (
                            stringify!($field).to_string(),
                            $crate::ToJson::to_json($field),
                        ),
                    )+
                ]),
            )]);
        }
    };
    (@from $value:ident, $ty:ident, $variant:ident) => {
        if $value.as_str() == Some(stringify!($variant)) {
            return Ok($ty::$variant);
        }
    };
    (@from $value:ident, $ty:ident, $variant:ident { $($field:ident),+ }) => {
        if let Some(inner) = $value.get(stringify!($variant)) {
            let members = inner
                .as_obj()
                .ok_or_else(|| $crate::JsonError::expected("object", stringify!($variant)))?;
            return Ok($ty::$variant {
                $( $field: $crate::field(members, stringify!($field))?, )+
            });
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::{from_str, to_string};

    #[derive(Debug, Clone, PartialEq)]
    struct Inner {
        id: u32,
        tags: Vec<String>,
    }
    crate::impl_json_struct!(Inner { id, tags });

    #[derive(Debug, Clone, PartialEq, Default)]
    struct WithDefault {
        always: u64,
        later_addition: u64,
    }
    crate::impl_json_struct!(WithDefault {
        always,
        [default] later_addition,
    });

    #[derive(Debug, Clone, Copy, PartialEq)]
    struct Id(u32);
    crate::impl_json_newtype!(Id(u32));

    #[derive(Debug, Clone, PartialEq)]
    enum Mixed {
        Off,
        Move { from: Id, to: Id },
        Note { text: String },
    }
    crate::impl_json_enum!(Mixed {
        Off,
        Move { from, to },
        Note { text },
    });

    #[test]
    fn struct_fields_in_declaration_order() {
        let v = Inner {
            id: 7,
            tags: vec!["a".into(), "b".into()],
        };
        let text = to_string(&v);
        assert_eq!(text, r#"{"id":7,"tags":["a","b"]}"#);
        assert_eq!(from_str::<Inner>(&text).unwrap(), v);
    }

    #[test]
    fn default_field_tolerates_old_blobs() {
        let v = from_str::<WithDefault>(r#"{"always":3}"#).unwrap();
        assert_eq!(
            v,
            WithDefault {
                always: 3,
                later_addition: 0
            }
        );
        // But a listed non-default field stays mandatory.
        assert!(from_str::<WithDefault>(r#"{"later_addition":1}"#).is_err());
    }

    #[test]
    fn newtype_is_transparent() {
        assert_eq!(to_string(&Id(42)), "42");
        assert_eq!(from_str::<Id>("42").unwrap(), Id(42));
    }

    #[test]
    fn enum_representation_matches_serde_json() {
        assert_eq!(to_string(&Mixed::Off), r#""Off""#);
        let mv = Mixed::Move {
            from: Id(1),
            to: Id(2),
        };
        assert_eq!(to_string(&mv), r#"{"Move":{"from":1,"to":2}}"#);
        assert_eq!(from_str::<Mixed>(&to_string(&mv)).unwrap(), mv);
        assert_eq!(from_str::<Mixed>(r#""Off""#).unwrap(), Mixed::Off);
        assert!(from_str::<Mixed>(r#""Unknown""#).is_err());
        assert!(from_str::<Mixed>(r#"{"Move":{"from":1}}"#).is_err());
    }

    #[test]
    fn string_payloads_round_trip_through_escaping() {
        let v = Mixed::Note {
            text: "line1\nline2 \"quoted\" \\slash 𝛅".into(),
        };
        assert_eq!(from_str::<Mixed>(&to_string(&v)).unwrap(), v);
    }
}
