//! The JSON value model, the stable-order writer, and the parser.

use std::fmt;

/// A parsed or constructed JSON value.
///
/// Object members keep **insertion order** — struct encoders push fields
/// in declaration order and the writer never sorts, which is what makes
/// the byte format deterministic and `serde_json`-compatible.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (the common case for the workspace's ids,
    /// counters, and hashes; preserved exactly up to `u64::MAX`).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered members.
    Obj(Vec<(String, Json)>),
}

/// A decode error: unexpected syntax or a shape mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
}

impl JsonError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
        }
    }

    /// Creates a "expected X while decoding Y" shape error.
    pub fn expected(what: &str, context: &str) -> Self {
        JsonError::new(format!("expected {what} while decoding {context}"))
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// The members of an object, if this is one.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// The elements of an array, if this is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up an object member by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()
            .and_then(|m| m.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v)
    }

    /// Appends this value's canonical JSON text to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let mut buf = [0u8; 20];
                out.push_str(format_u64(*n, &mut buf));
            }
            Json::I64(n) => {
                if *n >= 0 {
                    let mut buf = [0u8; 20];
                    out.push_str(format_u64(*n as u64, &mut buf));
                } else {
                    out.push('-');
                    let mut buf = [0u8; 20];
                    out.push_str(format_u64(n.unsigned_abs(), &mut buf));
                }
            }
            Json::F64(x) => write_f64(*x, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Formats a u64 into `buf`, returning the textual slice.
fn format_u64(mut n: u64, buf: &mut [u8; 20]) -> &str {
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    std::str::from_utf8(&buf[i..]).expect("ascii digits")
}

/// Writes a float the way `serde_json` (ryu) does for the values the
/// workspace produces: shortest round-trip decimal, with a trailing
/// `.0` on integral values.
fn write_f64(x: f64, out: &mut String) {
    if x.is_nan() || x.is_infinite() {
        // serde_json refuses these; our writer pins them to null so the
        // output stays valid JSON.
        out.push_str("null");
        return;
    }
    let text = format!("{x}");
    out.push_str(&text);
    if !text.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

const HEX: &[u8; 16] = b"0123456789abcdef";

/// Writes a JSON string literal with `serde_json`'s escaping rules.
fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\u{08}' => out.push_str("\\b"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\u{0c}' => out.push_str("\\f"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let n = c as u32;
                out.push_str("\\u00");
                out.push(HEX[(n >> 4) as usize] as char);
                out.push(HEX[(n & 0xf) as usize] as char);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::new(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::new(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(JsonError::new(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(JsonError::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                _ => return Err(JsonError::new("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let c = self
            .peek()
            .ok_or_else(|| JsonError::new("truncated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xd800..0xdc00).contains(&hi) {
                    // Surrogate pair.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        if !(0xdc00..0xe000).contains(&lo) {
                            return Err(JsonError::new("unpaired surrogate"));
                        }
                        0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                    } else {
                        return Err(JsonError::new("unpaired surrogate"));
                    }
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| JsonError::new("invalid codepoint"))?);
            }
            _ => return Err(JsonError::new("unknown escape")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut n = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| JsonError::new("truncated \\u escape"))?;
            self.pos += 1;
            let digit = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a' + 10) as u32,
                b'A'..=b'F' => (b - b'A' + 10) as u32,
                _ => return Err(JsonError::new("bad hex digit in \\u escape")),
            };
            n = n * 16 + digit;
        }
        Ok(n)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if !is_float {
            if negative {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Json::I64(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| JsonError::new(format!("bad number at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn text(v: &Json) -> String {
        let mut out = String::new();
        v.write(&mut out);
        out
    }

    #[test]
    fn writes_compact_objects_in_insertion_order() {
        let v = Json::Obj(vec![
            ("z".into(), Json::U64(1)),
            ("a".into(), Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(text(&v), r#"{"z":1,"a":[true,null]}"#);
    }

    #[test]
    fn u64_round_trips_exactly_at_the_edge() {
        let v = Json::U64(u64::MAX);
        assert_eq!(text(&v), "18446744073709551615");
        assert_eq!(parse("18446744073709551615").unwrap(), v);
    }

    #[test]
    fn negative_integers_round_trip() {
        assert_eq!(parse("-42").unwrap(), Json::I64(-42));
        assert_eq!(text(&Json::I64(-42)), "-42");
    }

    #[test]
    fn string_escapes_match_serde_json() {
        let v = Json::Str("a\"b\\c\n\t\u{01}é".into());
        assert_eq!(text(&v), "\"a\\\"b\\\\c\\n\\t\\u0001é\"");
        assert_eq!(parse(&text(&v)).unwrap(), v);
    }

    #[test]
    fn surrogate_pair_escapes_parse() {
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("\u{1f600}".into())
        );
    }

    #[test]
    fn floats_get_a_decimal_point() {
        assert_eq!(text(&Json::F64(1.0)), "1.0");
        assert_eq!(text(&Json::F64(0.5)), "0.5");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn whitespace_tolerated_on_parse() {
        let v = parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }
}
