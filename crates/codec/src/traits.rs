//! The `ToJson`/`FromJson` trait pair and impls for the std types the
//! workspace's record types are built from.

use std::collections::{BTreeMap, BTreeSet};

use crate::value::{Json, JsonError};

/// Types that encode to a [`Json`] value.
///
/// Implementations must be deterministic: the same value always produces
/// the same bytes (struct encoders write fields in declaration order,
/// and ordered containers iterate in their intrinsic order).
pub trait ToJson {
    /// Encodes `self`.
    fn to_json(&self) -> Json;
}

/// Types that decode from a [`Json`] value.
pub trait FromJson: Sized {
    /// Decodes a value, rejecting shape mismatches.
    fn from_json(value: &Json) -> Result<Self, JsonError>;
}

/// Decodes the member `key` of an already-matched object.
///
/// This is the helper the [`impl_json_struct!`](crate::impl_json_struct)
/// expansion uses; a missing member is an error.
pub fn field<T: FromJson>(members: &[(String, Json)], key: &str) -> Result<T, JsonError> {
    match members.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_json(v),
        None => Err(JsonError::new(format!("missing field \"{key}\""))),
    }
}

/// Like [`field`], but a missing member decodes to `T::default()`
/// (the `#[serde(default)]` replacement for forward-compatible blobs).
pub fn field_or_default<T: FromJson + Default>(
    members: &[(String, Json)],
    key: &str,
) -> Result<T, JsonError> {
    match members.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_json(v),
        None => Ok(T::default()),
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(value.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Bool(b) => Ok(*b),
            _ => Err(JsonError::expected("bool", "bool")),
        }
    }
}

macro_rules! unsigned_json {
    ($($ty:ty),+) => {
        $(
            impl ToJson for $ty {
                fn to_json(&self) -> Json {
                    Json::U64(*self as u64)
                }
            }

            impl FromJson for $ty {
                fn from_json(value: &Json) -> Result<Self, JsonError> {
                    match value {
                        Json::U64(n) => <$ty>::try_from(*n).map_err(|_| {
                            JsonError::new(format!(
                                "integer {n} out of range for {}",
                                stringify!($ty)
                            ))
                        }),
                        _ => Err(JsonError::expected("unsigned integer", stringify!($ty))),
                    }
                }
            }
        )+
    };
}

unsigned_json!(u8, u16, u32, u64, usize);

impl ToJson for i64 {
    fn to_json(&self) -> Json {
        if *self >= 0 {
            Json::U64(*self as u64)
        } else {
            Json::I64(*self)
        }
    }
}

impl FromJson for i64 {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::I64(n) => Ok(*n),
            Json::U64(n) => i64::try_from(*n)
                .map_err(|_| JsonError::new(format!("integer {n} out of range for i64"))),
            _ => Err(JsonError::expected("integer", "i64")),
        }
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl FromJson for f64 {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::F64(x) => Ok(*x),
            Json::U64(n) => Ok(*n as f64),
            Json::I64(n) => Ok(*n as f64),
            _ => Err(JsonError::expected("number", "f64")),
        }
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Str(s) => Ok(s.clone()),
            _ => Err(JsonError::expected("string", "String")),
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Arr(items) => items.iter().map(T::from_json).collect(),
            _ => Err(JsonError::expected("array", "Vec")),
        }
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Null => Ok(None),
            v => T::from_json(v).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for BTreeSet<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson + Ord> FromJson for BTreeSet<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Arr(items) => items.iter().map(T::from_json).collect(),
            _ => Err(JsonError::expected("array", "BTreeSet")),
        }
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<V: FromJson> FromJson for BTreeMap<String, V> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Obj(members) => members
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_json(v)?)))
                .collect(),
            _ => Err(JsonError::expected("object", "BTreeMap")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{from_str, to_string};

    #[test]
    fn std_containers_round_trip() {
        let v: Vec<u8> = vec![0, 127, 255];
        assert_eq!(to_string(&v), "[0,127,255]");
        assert_eq!(from_str::<Vec<u8>>("[0,127,255]").unwrap(), v);

        let mut m = BTreeMap::new();
        m.insert("b".to_string(), 2u64);
        m.insert("a".to_string(), 1u64);
        assert_eq!(to_string(&m), r#"{"a":1,"b":2}"#);
        assert_eq!(
            from_str::<BTreeMap<String, u64>>(&to_string(&m)).unwrap(),
            m
        );

        let s: BTreeSet<u32> = [3, 1, 2].into_iter().collect();
        assert_eq!(to_string(&s), "[1,2,3]");
    }

    #[test]
    fn options_are_null_or_value() {
        assert_eq!(to_string(&None::<u64>), "null");
        assert_eq!(to_string(&Some(5u64)), "5");
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u64>>("5").unwrap(), Some(5));
    }

    #[test]
    fn out_of_range_integers_rejected() {
        assert!(from_str::<u8>("256").is_err());
        assert!(from_str::<u32>("4294967296").is_err());
        assert!(from_str::<u64>("-1").is_err());
    }

    #[test]
    fn missing_field_vs_default() {
        let obj = crate::parse(r#"{"present":7}"#).unwrap();
        let members = obj.as_obj().unwrap();
        assert_eq!(field::<u64>(members, "present").unwrap(), 7);
        assert!(field::<u64>(members, "absent").is_err());
        assert_eq!(field_or_default::<u64>(members, "absent").unwrap(), 0);
    }
}
