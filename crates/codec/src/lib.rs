//! # xoar-codec
//!
//! A self-contained JSON codec for the workspace's serialized record
//! streams: the hash-chained audit log, the XenStore-State persistence
//! blob (§7.1), and the benchmark harness reports.
//!
//! The workspace builds from a cold registry with zero external crates —
//! a deliberate echo of the paper's thesis that unnecessary surface
//! should be cut out of the control plane. This crate replaces
//! `serde`/`serde_json` for the record types that actually cross a
//! serialization boundary, and it is **byte-compatible** with the
//! `serde_json` output the seed produced:
//!
//! * objects and arrays are written without whitespace
//!   (`{"k":1,"v":[2,3]}`);
//! * struct fields are written in declaration order (the order listed in
//!   the [`impl_json_struct!`] invocation), never sorted;
//! * enum values use the externally-tagged form: unit variants encode as
//!   the bare variant-name string, struct variants as
//!   `{"Variant":{..fields..}}`;
//! * newtype wrappers ([`DomId`-style ids](crate::ToJson)) encode as
//!   their inner value;
//! * strings escape `"`, `\`, and control characters exactly as
//!   `serde_json` does (`\b \t \n \f \r`, otherwise `\u00xx` with
//!   lowercase hex); nothing else is escaped.
//!
//! Because the audit log's chain hash is computed over the serialized
//! event payload, this compatibility is load-bearing: existing hash
//! chains verify unchanged (pinned by the golden tests in
//! `crates/core/tests/audit_golden.rs`).
//!
//! # Examples
//!
//! ```
//! use xoar_codec::{from_str, to_string, FromJson, Json, ToJson};
//!
//! #[derive(Debug, Clone, PartialEq)]
//! struct Point {
//!     x: u64,
//!     y: u64,
//! }
//! xoar_codec::impl_json_struct!(Point { x, y });
//!
//! let p = Point { x: 3, y: 4 };
//! let text = to_string(&p);
//! assert_eq!(text, r#"{"x":3,"y":4}"#);
//! assert_eq!(from_str::<Point>(&text).unwrap(), p);
//! ```

#![warn(missing_docs)]

mod macros;
mod traits;
mod value;

pub use traits::{field, field_or_default, FromJson, ToJson};
pub use value::{parse, Json, JsonError};

/// Serializes any [`ToJson`] value to its canonical JSON text.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    value.to_json().write(&mut out);
    out
}

/// Parses JSON text and decodes it into `T`.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&parse(text)?)
}
