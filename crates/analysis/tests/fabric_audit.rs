//! Privilege-flow audit over the live front-tier fabric workload.
//!
//! The fleet boots, the fabric switches real LB→web traffic through a
//! NetBack microreboot, and the captured model must come back clean:
//! switching frames between guests earns the fabric shard no reach
//! beyond the frontends' ring grants. The shard must also surface under
//! its own `fabric` label so the grant-only rule audits it by name.

use xoar_analysis::reach::Reachability;
use xoar_analysis::rules;
use xoar_analysis::snapshot::ModelSnapshot;
use xoar_sim::workloads::fronttier::{fleet, run_point, FrontTierConfig};

#[test]
fn fabric_workload_audits_clean() {
    let (mut p, lb, webs) = fleet(3);
    let point = run_point(&mut p, lb, &webs, &FrontTierConfig::small(512, 1));
    assert!(point.switched_frames > 0, "the fabric carried the traffic");
    assert!(point.restarts > 0, "the NetBack microrebooted mid-traffic");

    let snap = ModelSnapshot::capture(&mut p);
    assert!(
        snap.live_domains().any(|d| d.kind == "fabric"),
        "the switching plane appears under its own label"
    );
    let reach = Reachability::compute(&snap);
    let violations = rules::check(&snap, &reach);
    assert_eq!(
        violations,
        vec![],
        "switching at connection scale must not widen the shard's privilege"
    );
}
