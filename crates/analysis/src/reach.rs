//! The domain×resource reachability matrix.
//!
//! From a [`ModelSnapshot`] this module derives, for every ordered pair
//! of live domains, *whether* and *how* one can touch the other's
//! memory, plus the signalling topology and each domain's effective
//! hypercall surface. The paths are the three mechanisms the hypervisor
//! actually enforces (see `Hypervisor::check_foreign_access`):
//!
//! * [`MemPath::BlanketForeign`] — the `map_foreign_any` Dom0-style
//!   privilege (Xoar: Builder only);
//! * [`MemPath::PrivilegedFor`] — the §5.6 per-guest stub-domain flag;
//! * [`MemPath::Grant`] — an explicit grant-table entry from the owner.
//!
//! The rules in [`crate::rules`] are all statements about which paths
//! may exist between which shard classes.

use std::collections::{BTreeMap, BTreeSet};

use xoar_hypervisor::{DomId, HypercallId};

use crate::snapshot::ModelSnapshot;

/// One way a domain can reach another domain's memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MemPath {
    /// Holder of `map_foreign_any`: may map any frame of any domain.
    BlanketForeign,
    /// `privileged_for` edge: may map any frame of one named domain.
    PrivilegedFor,
    /// Explicit grant entry; `writable` mirrors the grant's access mode.
    Grant {
        /// Whether the grant permits writes.
        writable: bool,
    },
}

impl MemPath {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            MemPath::BlanketForeign => "blanket",
            MemPath::PrivilegedFor => "priv-for",
            MemPath::Grant { writable: true } => "grant-rw",
            MemPath::Grant { writable: false } => "grant-ro",
        }
    }
}

/// The computed matrix.
#[derive(Debug, Clone, Default)]
pub struct Reachability {
    /// `(accessor, owner)` → sorted, deduped paths by which `accessor`
    /// reaches `owner`'s frames. Pairs with no path are absent.
    pub mem: BTreeMap<(DomId, DomId), Vec<MemPath>>,
    /// Ordered pairs `(a, b)`, `a < b`, connected by an event channel.
    pub signals: BTreeSet<(DomId, DomId)>,
    /// Each live domain's effective callable set: every unprivileged
    /// call plus its whitelisted privileged calls, in `Ord` order.
    pub hypercalls: BTreeMap<DomId, Vec<HypercallId>>,
}

impl Reachability {
    /// Computes the matrix for a snapshot. Only live domains appear.
    pub fn compute(snap: &ModelSnapshot) -> Self {
        let live: Vec<DomId> = snap.live_domains().map(|d| d.id).collect();
        let live_set: BTreeSet<DomId> = live.iter().copied().collect();
        let mut mem: BTreeMap<(DomId, DomId), Vec<MemPath>> = BTreeMap::new();
        let mut push = |accessor: DomId, owner: DomId, path: MemPath| {
            if accessor != owner {
                mem.entry((accessor, owner)).or_default().push(path);
            }
        };
        for d in snap.live_domains() {
            if d.privileges.map_foreign_any {
                for &owner in &live {
                    push(d.id, owner, MemPath::BlanketForeign);
                }
            }
            for &owner in &d.privileged_for {
                if live_set.contains(&owner) {
                    push(d.id, owner, MemPath::PrivilegedFor);
                }
            }
        }
        for g in &snap.grants {
            if live_set.contains(&g.granter) && live_set.contains(&g.grantee) {
                push(
                    g.grantee,
                    g.granter,
                    MemPath::Grant {
                        writable: g.writable,
                    },
                );
            }
        }
        for paths in mem.values_mut() {
            paths.sort();
            paths.dedup();
        }
        let mut signals = BTreeSet::new();
        for &(a, b) in &snap.channels {
            if live_set.contains(&a) && live_set.contains(&b) {
                signals.insert((a, b));
            }
        }
        let mut hypercalls = BTreeMap::new();
        for d in snap.live_domains() {
            let callable: Vec<HypercallId> = HypercallId::ALL
                .iter()
                .copied()
                .filter(|id| d.privileges.permits_hypercall(*id))
                .collect();
            hypercalls.insert(d.id, callable);
        }
        Reachability {
            mem,
            signals,
            hypercalls,
        }
    }

    /// The memory paths from `accessor` to `owner` (empty slice if none).
    pub fn mem_paths(&self, accessor: DomId, owner: DomId) -> &[MemPath] {
        self.mem
            .get(&(accessor, owner))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Whether `accessor` reaches `owner`'s memory by any means.
    pub fn reaches_memory(&self, accessor: DomId, owner: DomId) -> bool {
        !self.mem_paths(accessor, owner).is_empty()
    }

    /// Deterministic rendering of the full matrix (the analyzer report
    /// body): one line per memory edge, one per signal edge.
    pub fn render(&self, snap: &ModelSnapshot) -> String {
        let kind = |d: DomId| snap.domains.get(&d).map(|i| i.kind.as_str()).unwrap_or("?");
        let mut out = String::new();
        for (&(a, o), paths) in &self.mem {
            let labels: Vec<&str> = paths.iter().map(|p| p.label()).collect();
            out.push_str(&format!(
                "mem {}({}) -> {}({}) via {}\n",
                a,
                kind(a),
                o,
                kind(o),
                labels.join(","),
            ));
        }
        for &(a, b) in &self.signals {
            out.push_str(&format!("sig {}({}) <-> {}({})\n", a, kind(a), b, kind(b)));
        }
        out
    }
}
