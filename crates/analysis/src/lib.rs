//! # xoar-analysis
//!
//! Static privilege-flow audit and source-boundary linter for the Xoar
//! workspace — the tooling counterpart to the paper's §3.1 claim that
//! every component runs with the least privilege its function needs.
//!
//! Two independent passes:
//!
//! * **Pass A — model-level privilege flow** (`xoar-analyzer` binary):
//!   [`snapshot`] freezes a running [`xoar_core::platform::Platform`]
//!   into a [`snapshot::ModelSnapshot`] (domains + privilege sets, grant
//!   table, event channels, XenStore ACLs); [`reach`] derives the
//!   domain×resource reachability matrix (who reads/writes whose frames
//!   and by which path, who signals whom, who may issue which
//!   hypercalls); [`rules`] checks least-privilege invariants as
//!   declarative rules with stable IDs; [`overpriv`] diffs each shard's
//!   *static* whitelist against the hypercalls it *actually* issued in a
//!   recorded simulation trace.
//!
//! * **Pass B — token-level source boundaries** (`xoar-lint` binary):
//!   [`lint`] scans `crates/*/src` with a comment/string-aware token
//!   scanner (no rustc, no external parser) and enforces the workspace's
//!   layering rules: no `unwrap`/`expect`/`panic!` in non-test
//!   hypervisor code, devices/core reach memory and grant internals only
//!   through the hypercall layer, and the `HypercallId` bookkeeping
//!   tables stay exhaustive.
//!
//! Every report is deterministic: all collections are ordered
//! (`BTreeMap` / sorted `Vec`s) so two runs over the same platform or
//! tree produce byte-identical output.
//!
//! A third, *dynamic* pass complements the static rules: [`spec`] is an
//! executable isolation specification — a small memory-ownership model
//! advanced in lockstep with the real hypervisor on every hypercall via
//! the dispatch hook, asserting after each step that the implementation
//! refines the model (every mapping, grant, CoW alias, and
//! clone fall-through is justified; no frame is cross-domain
//! read-visible without a declared edge). Divergences carry a minimal
//! reproducing op trace shrunk by the in-tree property harness.

#![warn(missing_docs)]

pub mod lint;
pub mod overpriv;
pub mod reach;
pub mod rules;
pub mod snapshot;
pub mod spec;
