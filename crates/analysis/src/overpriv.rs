//! Static-versus-used privilege diffing.
//!
//! The paper sizes each shard's whitelist by need; this module *checks*
//! that sizing. [`traced_scenario`] boots a Xoar platform with hypercall
//! tracing enabled from the very first boot-time call and drives one
//! representative pass over every management and data-path operation the
//! platform supports (guest creation — PV and HVM —, toolstack
//! pause/resume/resize, device-model DMA, network and block I/O,
//! template capture and snapshot-fork cloning, a driver microreboot,
//! guest destruction). [`report`] then diffs every
//! domain's *static* privileged-hypercall whitelist against the calls it
//! *actually issued*: whatever remains unused is over-privilege the
//! whitelist could shed.
//!
//! The scenario is fully deterministic (simulated time, no randomness),
//! so the resulting table is stable across runs and is committed to
//! EXPERIMENTS.md.

use std::collections::{BTreeMap, BTreeSet};

use xoar_core::platform::{GuestConfig, Platform, XoarConfig};
use xoar_hypervisor::memory::Pfn;
use xoar_hypervisor::{DomId, HvError, HvResult, Hypercall, HypercallId};

/// One row of the over-privilege table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverprivEntry {
    /// The domain.
    pub dom: DomId,
    /// Its name (shard class or guest name).
    pub name: String,
    /// Statically whitelisted privileged calls, `Ord` order.
    pub declared: Vec<HypercallId>,
    /// Privileged calls actually issued (and allowed) in the trace.
    pub used: Vec<HypercallId>,
    /// `declared - used`: the shedding candidates.
    pub unused: Vec<HypercallId>,
}

/// Boots a traced platform and drives the representative workload.
///
/// Returns the platform with the full trace (boot included) still
/// buffered inside the hypervisor; pass it to [`report`].
pub fn traced_scenario() -> HvResult<Platform> {
    let mut p = Platform::xoar(XoarConfig {
        trace_hypercalls: true,
        ..Default::default()
    });
    let ts = p.services.toolstacks[0];

    // Guest lifecycle: one PV guest, one HVM guest (exercises the
    // Builder's stub-domain path and the QemuVm whitelist).
    let pv = p.create_guest(ts, GuestConfig::evaluation_guest("pv-guest"))?;
    let mut hvm_cfg = GuestConfig::evaluation_guest("hvm-guest");
    hvm_cfg.hvm = true;
    let hvm = p.create_guest(ts, hvm_cfg)?;

    // Toolstack management surface.
    p.hv.hypercall(ts, Hypercall::DomctlPauseDomain { target: pv })?;
    p.hv.hypercall(ts, Hypercall::DomctlUnpauseDomain { target: pv })?;
    p.hv.hypercall(
        ts,
        Hypercall::DomctlSetMaxMem {
            target: pv,
            memory_mib: 1536,
        },
    )?;
    p.hv.hypercall(
        ts,
        Hypercall::DomctlSetVcpus {
            target: pv,
            vcpus: 2,
        },
    )?;
    p.hv.hypercall(ts, Hypercall::SysctlPhysinfo)?;

    // Device-model DMA into its guest (MmuWriteForeign under the
    // privileged_for edge).
    if let Some(model) = p.qemus.get_mut(&hvm) {
        model.dma_to_guest(&mut p.hv, Pfn(6), b"bios-shadow")?;
    }

    // Data path: network transmit and block write, both serviced.
    p.net_transmit(pv, 1, 1500)
        .map_err(|e| HvError::InvalidArgument(format!("net: {e:?}")))?;
    p.process_netbacks();
    p.blk_submit(pv, xoar_devices::blk::BlkOp::Write, 0, 8)
        .map_err(|e| HvError::InvalidArgument(format!("blk: {e:?}")))?;
    p.process_blkbacks();

    // Virtual network fabric: the NetBack terminates into the software
    // switch, and a flow nobody opened conn-tracks to the uplink with a
    // held NAT port. Switching adds no privilege — the fabric shard's
    // only memory reach stays the frontends' ring grants, which the
    // audit checks under its own `fabric` label.
    p.enable_fabric();
    p.net_transmit(pv, 2, 1500)
        .map_err(|e| HvError::InvalidArgument(format!("fabric: {e:?}")))?;
    p.process_netbacks();

    // Snapshot-fork lifecycle: seal a golden template and stamp one
    // clone from it (`DomctlCloneDomain`, the toolstack's fast-create
    // whitelist entry). Both stay alive so the analyzer sees the
    // template-backed sharing as declared edges.
    let golden = p.create_guest(ts, GuestConfig::evaluation_guest("golden"))?;
    p.capture_template(ts, golden)?;
    let _fx = p.clone_guest(ts, golden, "fx-0")?;

    // Driver microreboot: the shard snapshots itself, the Builder rolls
    // it back (the §3.3 restart pair).
    let nb = p.services.netbacks[0];
    p.hv.hypercall(nb, Hypercall::VmSnapshot)?;
    let builder = p.services.builder;
    p.hv.hypercall(builder, Hypercall::VmRollback { target: nb })?;

    // Teardown of the HVM guest (toolstack destroy + stub reclamation).
    p.destroy_guest(ts, hvm)?;
    Ok(p)
}

/// Drains the platform's trace and produces the per-domain diff.
///
/// Rows appear for every domain that either declares or used at least
/// one privileged call — including domains already destroyed (the
/// Bootstrapper's boot-time activity is the most interesting row).
pub fn report(p: &mut Platform) -> Vec<OverprivEntry> {
    let trace = p.hv.take_trace();
    let mut used: BTreeMap<DomId, BTreeSet<HypercallId>> = BTreeMap::new();
    for t in &trace {
        if t.allowed && t.id.is_privileged() {
            used.entry(t.caller).or_default().insert(t.id);
        }
    }
    let mut ids: BTreeSet<DomId> = p.hv.domain_ids().into_iter().collect();
    ids.extend(used.keys().copied());
    let mut rows = Vec::new();
    for dom in ids {
        let Ok(d) = p.hv.domain(dom) else { continue };
        let declared: Vec<HypercallId> = d.privileges.hypercalls.iter().collect();
        let used_set = used.remove(&dom).unwrap_or_default();
        if declared.is_empty() && used_set.is_empty() {
            continue;
        }
        let unused: Vec<HypercallId> = declared
            .iter()
            .copied()
            .filter(|id| !used_set.contains(id))
            .collect();
        rows.push(OverprivEntry {
            dom,
            name: d.name.clone(),
            declared,
            used: used_set.into_iter().collect(),
            unused,
        });
    }
    rows
}

/// Deterministic text rendering of the table.
pub fn render(rows: &[OverprivEntry]) -> String {
    let names = |ids: &[HypercallId]| ids.iter().map(|i| i.name()).collect::<Vec<_>>().join(",");
    let mut out = String::new();
    for r in rows {
        out.push_str(&format!(
            "overpriv {} {} declared={} used={} unused=[{}]\n",
            r.dom,
            r.name,
            r.declared.len(),
            r.used.len(),
            names(&r.unused),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_runs_and_traces_boot() {
        let mut p = traced_scenario().unwrap();
        let rows = report(&mut p);
        // The Bootstrapper (dom0, long destroyed) has a row: its
        // boot-time activity was traced because tracing starts before
        // the first shard is created.
        let boot = rows.iter().find(|r| r.dom == DomId(0)).unwrap();
        assert_eq!(boot.name, "bootstrapper");
        assert!(boot.used.contains(&HypercallId::DomctlCreateDomain));
        assert!(boot.used.contains(&HypercallId::DomctlPermitHypercall));
    }

    #[test]
    fn tightened_shards_show_no_dead_weight_on_core_rows() {
        let mut p = traced_scenario().unwrap();
        let ts = p.services.toolstacks[0];
        let builder = p.services.builder;
        let rows = report(&mut p);
        // Satellite check for the shard.rs tightening: the scenario
        // exercises the toolstack's and bootstrapper's whitelists
        // completely — every declared call is observed in use.
        for dom in [ts, DomId(0)] {
            let row = rows.iter().find(|r| r.dom == dom).unwrap();
            assert_eq!(
                row.unused,
                vec![],
                "{} still over-privileged: {:?}",
                row.name,
                row.unused
            );
        }
        // The Builder's whitelist is exercised except for delegation
        // (issued only when booting extra toolstacks) — pinned so any
        // new dead weight fails this test.
        let b = rows.iter().find(|r| r.dom == builder).unwrap();
        assert!(
            b.unused.is_empty() || b.unused == vec![HypercallId::DomctlDelegate],
            "builder unused grew: {:?}",
            b.unused
        );
    }

    #[test]
    fn report_is_deterministic() {
        let render_once = || {
            let mut p = traced_scenario().unwrap();
            render(&report(&mut p))
        };
        assert_eq!(render_once(), render_once());
    }
}
