//! Least-privilege invariants as declarative rules.
//!
//! Each rule has a stable string ID (reports and CI gates key on it),
//! takes the frozen model plus its reachability matrix, and yields zero
//! or more [`Violation`]s. The rules encode the paper's §3.1/§6.2
//! security argument as checkable statements:
//!
//! | rule ID | invariant |
//! |---|---|
//! | `xenstore-no-domain-building` | XenStore/Console shards never hold domain-building hypercalls or blanket memory access |
//! | `only-builder-blanket` | `map_foreign_any` is held by the Builder alone at steady state |
//! | `backend-grant-only` | driver backends reach frames only via explicit grants |
//! | `guest-noninterference` | no guest reaches another guest's memory except through a grant |
//! | `undeclared-sharing` | guests grant frames only to shards delegated to them (or their stub/toolstack), and guests alias machine frames only under hypervisor-managed CoW (dedup or frozen snapshot baselines) |
//! | `constraint-groups` | a shared backend never serves guests from different constraint groups |
//! | `no-undeclared-cross-region-access` | every domain×domain edge in the reachability matrix (memory paths and event channels) is covered by a declared `CrossRegionOp` kind in the hypervisor's ledger |

use std::collections::BTreeMap;

use xoar_hypervisor::domain::DomainRole;
use xoar_hypervisor::{DomId, HypercallId};

use crate::reach::{MemPath, Reachability};
use crate::snapshot::ModelSnapshot;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// Stable rule ID.
    pub rule: &'static str,
    /// The offending domain.
    pub subject: DomId,
    /// Human-readable specifics.
    pub detail: String,
}

impl Violation {
    fn new(rule: &'static str, subject: DomId, detail: String) -> Self {
        Violation {
            rule,
            subject,
            detail,
        }
    }

    /// One-line rendering.
    pub fn render(&self) -> String {
        format!("VIOLATION {} {}: {}", self.rule, self.subject, self.detail)
    }
}

/// Hypercalls that build or reshape domains — the calls the XenStore and
/// Console shards must never hold (they are pure service endpoints).
pub const DOMAIN_BUILDING_CALLS: [HypercallId; 7] = [
    HypercallId::DomctlCreateDomain,
    HypercallId::DomctlSetRole,
    HypercallId::DomctlPermitHypercall,
    HypercallId::MemoryPopulate,
    HypercallId::MmuMapForeign,
    HypercallId::MmuWriteForeign,
    HypercallId::GnttabForeignSetup,
];

/// Runs every rule; the result is sorted (deterministic reports).
pub fn check(snap: &ModelSnapshot, reach: &Reachability) -> Vec<Violation> {
    let mut out = Vec::new();
    xenstore_no_domain_building(snap, &mut out);
    only_builder_blanket(snap, &mut out);
    backend_grant_only(snap, reach, &mut out);
    guest_noninterference(snap, reach, &mut out);
    undeclared_sharing(snap, &mut out);
    constraint_groups(snap, &mut out);
    no_undeclared_cross_region_access(snap, reach, &mut out);
    out.sort();
    out.dedup();
    out
}

fn is_backend(kind: &str) -> bool {
    // The fabric is a NetBack hosting the virtual switch: switching
    // frames between guests grants it no extra reach, so it is held to
    // the same grant-only envelope as any backend.
    kind == "netback" || kind == "blkback" || kind == "fabric"
}

fn is_service_endpoint(kind: &str) -> bool {
    kind == "xenstore-logic" || kind == "xenstore-state" || kind == "console"
}

fn xenstore_no_domain_building(snap: &ModelSnapshot, out: &mut Vec<Violation>) {
    for d in snap.live_domains() {
        if !is_service_endpoint(&d.kind) {
            continue;
        }
        for id in DOMAIN_BUILDING_CALLS {
            if d.privileges.hypercalls.contains(id) {
                out.push(Violation::new(
                    "xenstore-no-domain-building",
                    d.id,
                    format!("{} shard holds {}", d.kind, id.name()),
                ));
            }
        }
        if d.privileges.map_foreign_any {
            out.push(Violation::new(
                "xenstore-no-domain-building",
                d.id,
                format!("{} shard holds blanket foreign-memory access", d.kind),
            ));
        }
    }
}

fn only_builder_blanket(snap: &ModelSnapshot, out: &mut Vec<Violation>) {
    for d in snap.live_domains() {
        if d.privileges.map_foreign_any && d.kind != "builder" {
            out.push(Violation::new(
                "only-builder-blanket",
                d.id,
                format!(
                    "map_foreign_any held by {} ({}); only the Builder may hold it",
                    d.id, d.kind
                ),
            ));
        }
    }
}

fn backend_grant_only(snap: &ModelSnapshot, reach: &Reachability, out: &mut Vec<Violation>) {
    for d in snap.live_domains() {
        if !is_backend(&d.kind) {
            continue;
        }
        for (&(accessor, owner), paths) in &reach.mem {
            if accessor != d.id {
                continue;
            }
            for p in paths {
                if !matches!(p, MemPath::Grant { .. }) {
                    out.push(Violation::new(
                        "backend-grant-only",
                        d.id,
                        format!(
                            "{} reaches {}'s memory via {} (only frontend grants allowed)",
                            d.kind,
                            owner,
                            p.label()
                        ),
                    ));
                }
            }
        }
    }
}

fn guest_noninterference(snap: &ModelSnapshot, reach: &Reachability, out: &mut Vec<Violation>) {
    for (&(accessor, owner), paths) in &reach.mem {
        let (Some(a), Some(o)) = (snap.domains.get(&accessor), snap.domains.get(&owner)) else {
            continue;
        };
        if a.role != DomainRole::Guest || o.role != DomainRole::Guest {
            continue;
        }
        for p in paths {
            if !matches!(p, MemPath::Grant { .. }) {
                out.push(Violation::new(
                    "guest-noninterference",
                    accessor,
                    format!(
                        "guest {} reaches guest {}'s memory via {} (must traverse a grant)",
                        accessor,
                        owner,
                        p.label()
                    ),
                ));
            }
        }
    }
}

fn undeclared_sharing(snap: &ModelSnapshot, out: &mut Vec<Violation>) {
    for g in &snap.grants {
        let Some(granter) = snap.domains.get(&g.granter) else {
            continue;
        };
        if granter.role != DomainRole::Guest || !granter.is_live() {
            continue;
        }
        let declared = granter.delegated_shards.contains(&g.grantee)
            || granter.parent_toolstack == Some(g.grantee)
            || snap
                .domains
                .get(&g.grantee)
                .is_some_and(|e| e.privileged_for.contains(&g.granter));
        if !declared {
            out.push(Violation::new(
                "undeclared-sharing",
                g.granter,
                format!(
                    "guest {} grants pfn {} (ref {}) to {}, which is not a delegated \
                     shard, its toolstack, or its device model",
                    g.granter, g.pfn, g.gref, g.grantee
                ),
            ));
        }
    }
    // Cross-domain frame aliasing: benign when the hypervisor manages it
    // as copy-on-write (content dedup — a write breaks the share) or as
    // a frozen microreboot snapshot baseline. A *raw* share between two
    // live guests is a covert channel unless one granted to the other.
    for f in &snap.shared_frames {
        if f.cow || f.frozen {
            continue;
        }
        let guests: Vec<DomId> = f
            .mappers
            .iter()
            .copied()
            .filter(|m| {
                snap.domains
                    .get(m)
                    .is_some_and(|d| d.role == DomainRole::Guest && d.is_live())
            })
            .collect();
        for (i, &a) in guests.iter().enumerate() {
            for &b in &guests[i + 1..] {
                let granted = snap.grants.iter().any(|g| {
                    (g.granter == a && g.grantee == b) || (g.granter == b && g.grantee == a)
                });
                if !granted {
                    out.push(Violation::new(
                        "undeclared-sharing",
                        a,
                        format!(
                            "guests {a} and {b} alias mfn {} outside hypervisor-managed \
                             CoW (not dedup, not a frozen snapshot baseline) with no \
                             grant between them",
                            f.mfn
                        ),
                    ));
                }
            }
        }
    }
}

/// Every edge the reachability matrix derives must trace back to a
/// declared `CrossRegionOp`: the sharded hypervisor core records a
/// `(kind, subject, object)` ledger entry whenever two state regions
/// are named together, so an edge with no covering declaration means
/// some path into another domain's region bypassed the typed
/// cross-region module — exactly the coupling the region split exists
/// to forbid.
fn no_undeclared_cross_region_access(
    snap: &ModelSnapshot,
    reach: &Reachability,
    out: &mut Vec<Violation>,
) {
    use std::collections::BTreeSet;
    let declared: BTreeSet<(&str, DomId, DomId)> = snap
        .declared
        .iter()
        .map(|(k, s, o)| (k.as_str(), *s, *o))
        .collect();
    for (&(accessor, owner), paths) in &reach.mem {
        for p in paths {
            let (kind, object) = match p {
                MemPath::Grant { .. } => ("grant", owner),
                MemPath::BlanketForeign => ("blanket", DomId(u32::MAX)),
                MemPath::PrivilegedFor => ("foreign", owner),
            };
            if !declared.contains(&(kind, accessor, object)) {
                out.push(Violation::new(
                    "no-undeclared-cross-region-access",
                    accessor,
                    format!(
                        "{} reaches {}'s region via {} with no declared {:?} cross-region op",
                        accessor,
                        owner,
                        p.label(),
                        kind
                    ),
                ));
            }
        }
    }
    for &(a, b) in &reach.signals {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        if !declared.contains(&("event", lo, hi)) {
            out.push(Violation::new(
                "no-undeclared-cross-region-access",
                lo,
                format!(
                    "event channel between {lo} and {hi} with no declared \
                     \"event\" cross-region op"
                ),
            ));
        }
    }
}

fn constraint_groups(snap: &ModelSnapshot, out: &mut Vec<Violation>) {
    // grantee shard -> first (group, guest) seen among its granter guests.
    let mut adopted: BTreeMap<DomId, (String, DomId)> = BTreeMap::new();
    for g in &snap.grants {
        let Some(grantee) = snap.domains.get(&g.grantee) else {
            continue;
        };
        let Some(granter) = snap.domains.get(&g.granter) else {
            continue;
        };
        if grantee.role == DomainRole::Guest || granter.role != DomainRole::Guest {
            continue;
        }
        let Some(group) = &granter.constraint_group else {
            continue;
        };
        match adopted.get(&g.grantee) {
            None => {
                adopted.insert(g.grantee, (group.clone(), g.granter));
            }
            Some((first, first_guest)) if first != group => {
                out.push(Violation::new(
                    "constraint-groups",
                    g.grantee,
                    format!(
                        "shard {} serves guest {} (group {:?}) and guest {} (group {:?})",
                        g.grantee, first_guest, first, g.granter, group
                    ),
                ));
            }
            Some(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{DomainInfo, GrantEdge};

    fn builder(id: u32) -> DomainInfo {
        let mut d = DomainInfo::fixture(DomId(id), "builder", DomainRole::Shard);
        d.privileges.map_foreign_any = true;
        d
    }

    fn netback(id: u32) -> DomainInfo {
        DomainInfo::fixture(DomId(id), "netback", DomainRole::Shard)
    }

    fn toolstack(id: u32) -> DomainInfo {
        DomainInfo::fixture(DomId(id), "toolstack", DomainRole::Shard)
    }

    fn guest(id: u32, netback: u32, toolstack: u32) -> DomainInfo {
        let mut d = DomainInfo::fixture(DomId(id), "guest", DomainRole::Guest);
        d.delegated_shards.insert(DomId(netback));
        d.parent_toolstack = Some(DomId(toolstack));
        d
    }

    fn grant(granter: u32, grantee: u32, gref: u32) -> GrantEdge {
        GrantEdge {
            granter: DomId(granter),
            grantee: DomId(grantee),
            gref,
            pfn: 4,
            writable: true,
        }
    }

    /// A hand-built least-privilege platform: builder + netback +
    /// toolstack + two guests granting only to their delegated backend.
    fn known_good() -> ModelSnapshot {
        ModelSnapshot::fixture()
            .with_domain(builder(1))
            .with_domain(netback(2))
            .with_domain(toolstack(3))
            .with_domain(guest(10, 2, 3))
            .with_domain(guest(11, 2, 3))
            .with_grant(grant(10, 2, 0))
            .with_grant(grant(11, 2, 0))
    }

    fn run(snap: &ModelSnapshot) -> Vec<Violation> {
        let reach = Reachability::compute(snap);
        check(snap, &reach)
    }

    #[test]
    fn known_good_platform_is_clean() {
        assert_eq!(run(&known_good()), vec![]);
    }

    #[test]
    fn over_privileged_backend_fires_two_rules() {
        let mut snap = known_good();
        snap.domains
            .get_mut(&DomId(2))
            .unwrap()
            .privileges
            .map_foreign_any = true;
        let v = run(&snap);
        let rules: Vec<&str> = v.iter().map(|x| x.rule).collect();
        assert!(rules.contains(&"only-builder-blanket"), "{v:?}");
        assert!(rules.contains(&"backend-grant-only"), "{v:?}");
    }

    #[test]
    fn over_privileged_fabric_shard_is_grant_only() {
        // The virtual-switch shard is a backend: blanket foreign-memory
        // reach on it must fire the grant-only rule under its own label.
        let mut fab = DomainInfo::fixture(DomId(6), "fabric", DomainRole::Shard);
        fab.privileges.map_foreign_any = true;
        let snap = known_good().with_domain(fab);
        let v = run(&snap);
        assert!(
            v.iter()
                .any(|x| x.rule == "backend-grant-only" && x.detail.starts_with("fabric ")),
            "{v:?}"
        );
    }

    #[test]
    fn xenstore_holding_builder_calls_is_flagged() {
        let mut xs = DomainInfo::fixture(DomId(4), "xenstore-state", DomainRole::Shard);
        xs.privileges
            .permit_hypercall(HypercallId::DomctlCreateDomain);
        let snap = known_good().with_domain(xs);
        let v = run(&snap);
        assert!(
            v.iter().any(|x| x.rule == "xenstore-no-domain-building"
                && x.subject == DomId(4)
                && x.detail.contains("domctl.create")),
            "{v:?}"
        );
    }

    #[test]
    fn undeclared_sharing_edge_is_flagged() {
        // Guest 10 grants a frame to netback 5, which was never
        // delegated to it.
        let snap = known_good()
            .with_domain(netback(5))
            .with_grant(grant(10, 5, 1));
        let v = run(&snap);
        assert_eq!(
            v.iter().filter(|x| x.rule == "undeclared-sharing").count(),
            1,
            "{v:?}"
        );
        assert!(v.iter().any(|x| x.subject == DomId(10)));
    }

    #[test]
    fn raw_frame_alias_between_guests_is_flagged() {
        use crate::snapshot::SharedFrame;
        let raw = SharedFrame {
            mfn: 77,
            mappers: vec![DomId(10), DomId(11)],
            cow: false,
            frozen: false,
        };
        let v = run(&known_good().with_shared_frame(raw.clone()));
        assert!(
            v.iter()
                .any(|x| x.rule == "undeclared-sharing" && x.detail.contains("mfn 77")),
            "{v:?}"
        );
        // The same alias under hypervisor-managed CoW is benign…
        let cow = SharedFrame {
            cow: true,
            ..raw.clone()
        };
        assert_eq!(run(&known_good().with_shared_frame(cow)), vec![]);
        // …as is a frozen snapshot baseline alias…
        let frozen = SharedFrame {
            frozen: true,
            ..raw.clone()
        };
        assert_eq!(run(&known_good().with_shared_frame(frozen)), vec![]);
        // …and a raw share covered by an explicit (declared) grant is
        // consent.
        let mut snap = known_good()
            .with_shared_frame(raw)
            .with_grant(grant(10, 11, 7));
        snap.domains
            .get_mut(&DomId(10))
            .unwrap()
            .delegated_shards
            .insert(DomId(11));
        assert!(run(&snap).iter().all(|x| x.rule != "undeclared-sharing"));
    }

    #[test]
    fn shard_frame_alias_is_not_guest_sharing() {
        use crate::snapshot::SharedFrame;
        // A raw share where one mapper is a shard (e.g. a netback's
        // snapshot machinery) involves no guest pair; other rules own
        // shard privileges.
        let snap = known_good().with_shared_frame(SharedFrame {
            mfn: 5,
            mappers: vec![DomId(2), DomId(10)],
            cow: false,
            frozen: false,
        });
        assert_eq!(run(&snap), vec![]);
    }

    #[test]
    fn qemu_stub_grant_is_declared_sharing() {
        // A grant to the guest's device model (privileged_for edge) is
        // declared even though the stub is not in delegated_shards.
        let mut qemu = DomainInfo::fixture(DomId(6), "qemu", DomainRole::Shard);
        qemu.privileged_for.insert(DomId(10));
        let snap = known_good().with_domain(qemu).with_grant(grant(10, 6, 1));
        assert_eq!(run(&snap), vec![]);
    }

    #[test]
    fn guest_mapping_guest_violates_noninterference() {
        let mut snap = known_good();
        snap.domains
            .get_mut(&DomId(10))
            .unwrap()
            .privileged_for
            .insert(DomId(11));
        let v = run(&snap);
        assert!(
            v.iter()
                .any(|x| x.rule == "guest-noninterference" && x.subject == DomId(10)),
            "{v:?}"
        );
        // An explicit guest-to-guest grant, by contrast, is consent.
        let snap2 = known_good().with_grant(grant(10, 11, 3));
        assert!(run(&snap2)
            .iter()
            .all(|x| x.rule != "guest-noninterference"));
    }

    #[test]
    fn mixed_constraint_groups_on_one_shard_flagged() {
        let mut snap = known_good();
        snap.domains.get_mut(&DomId(10)).unwrap().constraint_group = Some("a".into());
        snap.domains.get_mut(&DomId(11)).unwrap().constraint_group = Some("b".into());
        let v = run(&snap);
        assert!(
            v.iter()
                .any(|x| x.rule == "constraint-groups" && x.subject == DomId(2)),
            "{v:?}"
        );
        // Same group: fine.
        snap.domains.get_mut(&DomId(11)).unwrap().constraint_group = Some("a".into());
        assert_eq!(run(&snap), vec![]);
    }

    #[test]
    fn undeclared_cross_region_edges_are_flagged() {
        // A grant edge injected behind the builders' backs (no ledger
        // entry) — as if something wrote into another domain's grant
        // table without going through the CrossRegionOp module.
        let mut snap = known_good();
        snap.grants.push(grant(11, 3, 9));
        snap.grants.sort();
        let v = run(&snap);
        assert!(
            v.iter()
                .any(|x| x.rule == "no-undeclared-cross-region-access"
                    && x.subject == DomId(3)
                    && x.detail.contains("grant")),
            "{v:?}"
        );
        // The same edge built through the declaring builder is clean.
        let declared = known_good().with_grant(grant(11, 3, 9));
        assert!(run(&declared)
            .iter()
            .all(|x| x.rule != "no-undeclared-cross-region-access"));
    }

    #[test]
    fn undeclared_event_channel_is_flagged() {
        let mut snap = known_good();
        snap.channels.push((DomId(10), DomId(11)));
        let v = run(&snap);
        assert!(
            v.iter()
                .any(|x| x.rule == "no-undeclared-cross-region-access"
                    && x.detail.contains("event channel")),
            "{v:?}"
        );
        let declared = snap.with_declared("event", DomId(10), DomId(11));
        assert!(run(&declared)
            .iter()
            .all(|x| x.rule != "no-undeclared-cross-region-access"));
    }

    #[test]
    fn fixture_builders_declare_their_own_edges() {
        // known_good has grants and a blanket-privileged builder; the
        // builders must have declared them all.
        assert_eq!(run(&known_good()), vec![]);
        let mut fixture_stub = DomainInfo::fixture(DomId(6), "qemu", DomainRole::Shard);
        fixture_stub.privileged_for.insert(DomId(10));
        let snap = known_good().with_domain(fixture_stub);
        assert!(run(&snap)
            .iter()
            .all(|x| x.rule != "no-undeclared-cross-region-access"));
    }

    #[test]
    fn dead_domains_are_ignored() {
        let mut snap = known_good();
        let d = snap.domains.get_mut(&DomId(2)).unwrap();
        d.privileges.map_foreign_any = true;
        d.state = xoar_hypervisor::DomainState::Dead;
        assert_eq!(run(&snap), vec![]);
    }

    #[test]
    fn violations_sort_deterministically() {
        let mut snap = known_good();
        snap.domains
            .get_mut(&DomId(2))
            .unwrap()
            .privileges
            .map_foreign_any = true;
        let a = run(&snap);
        let b = run(&snap);
        assert_eq!(a, b);
    }
}
