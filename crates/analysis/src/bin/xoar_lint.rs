//! `xoar-lint` — Pass B entry point.
//!
//! Scans every `crates/*/src/**/*.rs` file in the workspace, applies the
//! layering rules from [`xoar_analysis::lint`], subtracts the committed
//! allowlist (`crates/analysis/lint.allow` — absent by default: the
//! workspace carries no suppressions), and prints the survivors in
//! stable sorted order. Exits nonzero iff any finding survives, or if
//! an allowlist entry suppresses nothing — stale debt must be deleted,
//! so the list can only shrink.
//!
//! Usage: `xoar-lint [--root <repo-root>]` — the root defaults to the
//! workspace this binary was built from, so `cargo run -p xoar-analysis
//! --bin xoar-lint` works offline from any cwd.

use std::path::PathBuf;
use std::process::ExitCode;

use xoar_analysis::lint::{apply_allowlist, lint_sources, load_tree, Allowlist};

fn main() -> ExitCode {
    let mut root = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => {
                let Some(v) = args.next() else {
                    eprintln!("xoar-lint: --root needs a value");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(v);
            }
            other => {
                eprintln!("xoar-lint: unknown argument {other}");
                return ExitCode::from(2);
            }
        }
    }

    let files = match load_tree(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("xoar-lint: cannot read {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let allow_path = root.join("crates/analysis/lint.allow");
    let allow = match std::fs::read_to_string(&allow_path) {
        Ok(text) => Allowlist::parse(&text),
        Err(_) => Allowlist::default(),
    };

    let findings = lint_sources(&files);
    let stale = allow.unused_entries(&findings);
    let (kept, suppressed) = apply_allowlist(findings, &allow);
    for f in &kept {
        println!("{}", f.render());
    }
    for entry in &stale {
        println!("stale allowlist entry (suppresses nothing — delete it): {entry}");
    }
    println!(
        "xoar-lint: {} file(s), {} finding(s), {} allowlisted, {} stale entr(ies)",
        files.len(),
        kept.len(),
        suppressed.len(),
        stale.len()
    );
    if kept.is_empty() && stale.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
