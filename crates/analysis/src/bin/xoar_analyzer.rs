//! `xoar-analyzer` — Pass A entry point.
//!
//! Boots the traced reference scenario, snapshots the resulting model
//! state, computes the reachability matrix, checks the least-privilege
//! rules, and prints the over-privilege table. The full report is
//! byte-stable across runs (simulated time, sorted collections). Exits
//! nonzero iff any rule fires.
//!
//! `--selftest` instead injects known violations into the captured
//! snapshot (a blanket-foreign NetBack, an undeclared guest grant, raw
//! frame aliases — including one between a clone template and its
//! stamped clone) and verifies the rules catch each — proving the
//! analyzer itself has teeth before CI trusts its clean run.
//!
//! The dynamic spec pass has its own pair of modes: `--spec-exhaustive`
//! enumerates every small-scope op sequence with the lockstep checker
//! attached (plus a randomized longer-sequence sweep) and fails on any
//! divergence; `--spec-selftest` injects three known isolation
//! violations and requires each to fire its distinct rule with a shrunk
//! counterexample trace.

use std::process::ExitCode;

use xoar_analysis::overpriv;
use xoar_analysis::reach::Reachability;
use xoar_analysis::rules;
use xoar_analysis::snapshot::{DomainInfo, GrantEdge, ModelSnapshot, SharedFrame};
use xoar_analysis::spec::drive;
use xoar_core::platform::Platform;
use xoar_hypervisor::domain::DomainRole;
use xoar_hypervisor::{DomId, HvError, Hypercall, HypercallId, HypercallRet};

fn main() -> ExitCode {
    if std::env::args().any(|a| a == "--spec-exhaustive") {
        return run_spec_exhaustive();
    }
    if std::env::args().any(|a| a == "--spec-selftest") {
        return run_spec_selftest();
    }
    let selftest = std::env::args().any(|a| a == "--selftest");

    let mut platform = match overpriv::traced_scenario() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("xoar-analyzer: scenario failed: {e}");
            return ExitCode::from(2);
        }
    };
    let snap = ModelSnapshot::capture(&mut platform);

    if selftest {
        return run_selftest(&mut platform, snap);
    }

    let reach = Reachability::compute(&snap);
    let violations = rules::check(&snap, &reach);
    let over = overpriv::report(&mut platform);

    print!("{}", snap.render());
    print!("{}", reach.render(&snap));
    for v in &violations {
        println!("{}", v.render());
    }
    print!("{}", overpriv::render(&over));
    println!(
        "xoar-analyzer: {} domain(s), {} memory edge(s), {} violation(s)",
        snap.domains.len(),
        reach.mem.len(),
        violations.len()
    );
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Exhaustive small-scope run of the lockstep isolation checker:
/// every op sequence up to depth 3 over the driver alphabet, then a
/// randomized sweep of longer sequences. Exits nonzero on any
/// divergence (printing the shrunk reproducing trace).
fn run_spec_exhaustive() -> ExitCode {
    let mut ok = true;
    for depth in 1..=3 {
        let r = drive::exhaustive(depth);
        println!(
            "spec: exhaustive depth {} — {} sequences, {} ops, {} lockstep checks, {} divergence(s)",
            r.length,
            r.sequences,
            r.ops_applied,
            r.checks,
            r.divergences.len()
        );
        for (seq, d) in &r.divergences {
            ok = false;
            eprintln!(
                "spec: FAIL — divergence on sequence {seq:?}: {} ({})",
                d.rule, d.detail
            );
            for &op in seq {
                eprintln!("    {}", drive::OP_NAMES[op % drive::ALPHABET]);
            }
        }
    }
    match drive::random_sweep(300, 12) {
        None => println!("spec: random sweep — 300 sequences up to 12 ops, 0 divergences"),
        Some((minimal, report)) => {
            ok = false;
            eprintln!("spec: FAIL — random sweep diverged (minimal {minimal:?})");
            eprintln!("{report}");
        }
    }
    if ok {
        println!("xoar-analyzer: spec exhaustive passed");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Proves the lockstep checker has teeth: three distinct known
/// violations are injected behind the dispatch path and each must fire
/// its rule, with a shrunk counterexample trace and a copy-pasteable
/// regression test in the report.
fn run_spec_selftest() -> ExitCode {
    let mut ok = true;
    for outcome in drive::selftest() {
        if outcome.fired {
            println!("spec selftest: {} fired as expected", outcome.rule);
        } else {
            eprintln!("spec selftest: FAIL — {} did not fire", outcome.rule);
            ok = false;
        }
        for line in outcome.report.lines() {
            println!("{line}");
        }
    }
    if ok {
        println!("xoar-analyzer: spec selftest passed (3 injections caught)");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Injects over-privilege and undeclared sharing, then checks the rules
/// fire; also probes the live platform with a smuggled privileged
/// sub-call inside a Multicall batch. Success means the analyzer (and
/// the hypercall gate it audits) detects what it claims to detect.
fn run_selftest(platform: &mut Platform, mut snap: ModelSnapshot) -> ExitCode {
    let fabric = snap
        .live_domains()
        .find(|d| d.kind == "fabric")
        .map(|d| d.id);
    let guest = snap
        .live_domains()
        .find(|d| d.kind == "guest")
        .map(|d| d.id);
    let (Some(fabric), Some(guest)) = (fabric, guest) else {
        eprintln!("xoar-analyzer: selftest: scenario lacks a fabric shard or guest");
        return ExitCode::from(2);
    };

    // Injection 1: grant the fabric-hosting NetBack the Builder's
    // blanket privilege — an over-privileged switching plane.
    snap.domains
        .get_mut(&fabric)
        .expect("fabric present")
        .privileges
        .map_foreign_any = true;
    // Injection 2: an undeclared grant from a guest to a shard it never
    // delegated to (the XenStore-State shard, never a grant target).
    let xs_state = snap
        .live_domains()
        .find(|d| d.kind == "xenstore-state")
        .map(|d| d.id);
    let Some(xs_state) = xs_state else {
        eprintln!("xoar-analyzer: selftest: scenario lacks xenstore-state");
        return ExitCode::from(2);
    };
    snap.grants.push(GrantEdge {
        granter: guest,
        grantee: xs_state,
        gref: 9999,
        pfn: 42,
        writable: true,
    });
    snap.grants.sort();
    // Injection 3: a raw cross-guest frame alias — neither CoW dedup nor
    // a frozen snapshot baseline, and no grant between the pair. The
    // sharing rule must flag it. The scenario tears its HVM guest down,
    // so the peer is a synthetic guest injected fixture-style.
    let second_guest = DomId(9999);
    snap.domains.insert(
        second_guest,
        DomainInfo::fixture(second_guest, "guest", DomainRole::Guest),
    );
    snap.shared_frames.push(SharedFrame {
        mfn: 999_001,
        mappers: vec![guest, second_guest],
        cow: false,
        frozen: false,
    });
    // …while the identical alias marked as a frozen snapshot baseline
    // must NOT fire (microreboot CoW pre-images are hypervisor-managed,
    // not guest communication).
    snap.shared_frames.push(SharedFrame {
        mfn: 999_002,
        mappers: vec![guest, second_guest],
        cow: false,
        frozen: true,
    });
    // Injection 5: a snapshot-fork pair — the scenario's sealed template
    // and its stamped clone — aliasing a frame *outside* the template
    // fan-out (which the capture marks `cow`, since a clone's first
    // write breaks it). A stamp-path bug handing a clone a raw view of
    // a template frame is exactly this shape, and no grant runs between
    // the pair, so the sharing rule must fire.
    let template = snap
        .live_domains()
        .find(|d| d.name == "golden")
        .map(|d| d.id);
    let clone = snap.live_domains().find(|d| d.name == "fx-0").map(|d| d.id);
    let (Some(template), Some(clone)) = (template, clone) else {
        eprintln!("xoar-analyzer: selftest: scenario lacks the template/clone pair");
        return ExitCode::from(2);
    };
    snap.shared_frames.push(SharedFrame {
        mfn: 999_003,
        mappers: vec![template, clone],
        cow: false,
        frozen: false,
    });
    snap.shared_frames.sort();

    // Injection 4 (live platform): a shard abuses the unprivileged
    // Multicall to smuggle a privileged sub-call it is not whitelisted
    // for. The gate must deny the entry per-Xen-semantics (no batch
    // abort) AND the attempt must land in the trace, where the
    // privilege-flow audit sees it — batching must not launder calls.
    let nb = platform.services.netbacks[0];
    let ret = platform.hv.hypercall(
        nb,
        Hypercall::Multicall {
            calls: vec![Hypercall::SysctlPhysinfo],
        },
    );
    let smuggle_denied = matches!(
        &ret,
        Ok(HypercallRet::Multi(entries))
            if entries.len() == 1
                && matches!(entries[0], Err(HvError::PermissionDenied { .. }))
    );
    let smuggle_traced = platform
        .hv
        .take_trace()
        .iter()
        .any(|t| t.caller == nb && t.id == HypercallId::SysctlPhysinfo && !t.allowed);

    let reach = Reachability::compute(&snap);
    let violations = rules::check(&snap, &reach);
    let rules_fired: Vec<&str> = violations.iter().map(|v| v.rule).collect();
    let mut ok = true;
    if smuggle_denied && smuggle_traced {
        println!("selftest: multicall smuggled sub-call denied and traced");
    } else {
        eprintln!(
            "selftest: FAIL — multicall smuggling (denied={smuggle_denied} traced={smuggle_traced})"
        );
        ok = false;
    }
    // Injections 1 and 2 also bypass the hypervisor's cross-region
    // ledger (no `CrossRegionOp` ever declared the NetBack's blanket
    // reach or the smuggled grant), so the region-accounting rule must
    // fire alongside the privilege rules.
    for expected in [
        "only-builder-blanket",
        "backend-grant-only",
        "undeclared-sharing",
        "no-undeclared-cross-region-access",
    ] {
        if rules_fired.contains(&expected) {
            println!("selftest: {expected} fired as expected");
        } else {
            eprintln!("selftest: FAIL — {expected} did not fire");
            ok = false;
        }
    }
    // The over-privileged switching plane must surface under its own
    // label: the grant-only rule naming the fabric shard specifically.
    let fabric_grant_only = violations
        .iter()
        .any(|v| v.rule == "backend-grant-only" && v.detail.starts_with("fabric "));
    if fabric_grant_only {
        println!("selftest: over-privileged fabric shard caught by backend-grant-only");
    } else {
        eprintln!("selftest: FAIL — over-privileged fabric shard not flagged");
        ok = false;
    }
    let raw_alias_fired = violations
        .iter()
        .any(|v| v.rule == "undeclared-sharing" && v.detail.contains("mfn 999001"));
    let frozen_alias_fired = violations
        .iter()
        .any(|v| v.rule == "undeclared-sharing" && v.detail.contains("mfn 999002"));
    if raw_alias_fired && !frozen_alias_fired {
        println!("selftest: raw frame alias fired; frozen snapshot alias exempt");
    } else {
        eprintln!(
            "selftest: FAIL — frame aliasing (raw_fired={raw_alias_fired} \
             frozen_fired={frozen_alias_fired}; frozen CoW baselines must be exempt)"
        );
        ok = false;
    }
    let clone_alias_fired = violations
        .iter()
        .any(|v| v.rule == "undeclared-sharing" && v.detail.contains("mfn 999003"));
    if clone_alias_fired {
        println!("selftest: raw template/clone alias fired (stamp path cannot leak)");
    } else {
        eprintln!("selftest: FAIL — raw template/clone alias did not fire");
        ok = false;
    }
    if ok {
        println!(
            "xoar-analyzer: selftest passed ({} violations)",
            violations.len()
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("  saw: {}", v.render());
        }
        ExitCode::FAILURE
    }
}
