//! Executable isolation spec: lockstep memory-ownership model and
//! differential noninterference checker.
//!
//! The paper's security argument says Xoar's decomposition bounds what
//! a compromised shard can reach. The static rules ([`crate::rules`])
//! check that claim against a frozen snapshot; this module checks it
//! *while the hypervisor runs*. A tiny high-level model of machine
//! memory ([`model::SpecState`]: per-frame owner, declared-sharing
//! edges, privilege relation) is advanced in lockstep with the real
//! hypervisor on every hypercall, via the dispatch hook
//! ([`xoar_hypervisor::DispatchHook`]) the gate exposes — one untaken
//! branch when no checker is attached, so bench and production paths
//! are unaffected.
//!
//! After each step the checker ([`checker::SpecCore`]) asserts the
//! refinement relation: every real grant entry, frame-ownership change,
//! CoW alias, and clone fall-through must be justified by the model,
//! and no frame may be cross-domain read-visible without a declared
//! edge. A divergence is recorded sticky with the op trace that
//! produced it; the drivers ([`drive`]) shrink failing sequences to a
//! minimal reproducing trace with the in-tree property harness and
//! render a copy-pasteable regression test.
//!
//! Three entry points:
//! * [`checker::SpecHandle::attach`] — wire the checker onto any live
//!   hypervisor (used by the noninterference integration tests);
//! * [`drive::exhaustive`] / [`drive::random_sweep`] — small-scope
//!   enumeration over grant/map/unmap/transfer/copy/snapshot/rollback/
//!   clone/microreboot sequences (the `--spec-exhaustive` CI gate);
//! * [`drive::selftest`] — injects known violations (revoked-grant
//!   resurrection, backdoor clone fall-through, raw alias) and proves
//!   each fires its rule (`--spec-selftest`).

pub mod checker;
pub mod drive;
pub mod model;

pub use checker::{Divergence, SpecChecker, SpecHandle};
pub use model::{GrantFact, SpecState};
