//! The differential refinement checker.
//!
//! [`SpecCore`] holds a [`SpecState`] and advances it in lockstep with
//! the real hypervisor: the dispatch hook delivers every hypercall
//! (post-state, call, and result), the core applies the spec-level
//! semantics of the op, and then *diffs* the real state against the
//! model. Any difference outside the op's permitted footprint is a
//! divergence — recorded sticky with the op trace that produced it,
//! never panicking (the hook runs inside the hypervisor's no-panic
//! gate).
//!
//! Checked refinement obligations, in order:
//!
//! 1. **Grant tables** — each live domain's table must equal the
//!    model's facts exactly, both ways. An unjustified real entry that
//!    re-states a revoked capability is diagnosed as
//!    `revoked-grant-resurrected` (the satellite-2 hole); any other
//!    unjustified entry as `unjustified-grant-entry`.
//! 2. **Frame ownership** — owner changes are confined to the op's
//!    write footprint (exact per-mfn diff in small scopes, per-domain
//!    counts beyond [`super::model::EXACT_OWNER_LIMIT`]).
//! 3. **Cross-domain visibility** — every multi-domain frame alias
//!    must be justified: refs-backed CoW shares (dedup, snapshot
//!    baselines) are break-on-write and exempt, clone fall-through
//!    pairs require a model-side clone link, and injected raw aliases
//!    require a declared edge.
//! 4. **Declared-edge ledger** — ops with no declaration footprint must
//!    leave the ledger byte-identical to the model's copy.
//!
//! Direct guest writes to a domain's own memory are not hypercalls;
//! drivers announce them with [`SpecHandle::note_write`] so the CoW
//! breaks they cause are justified at the next check. Unannounced
//! out-of-band mutation — the attack model — is what the checker
//! exists to catch.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::rc::Rc;

use xoar_hypervisor::grant::GrantAccess;
use xoar_hypervisor::hypercall::{Hypercall, HypercallRet};
use xoar_hypervisor::{DispatchHook, DomId, HvResult, Hypervisor};

use super::model::{GrantFact, SpecState};

/// A refinement violation: the real hypervisor did something the model
/// does not justify.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Stable rule identifier (`revoked-grant-resurrected`,
    /// `unjustified-grant-entry`, `grant-entry-vanished`,
    /// `unjustified-ownership-change`, `undeclared-clone-fanthrough`,
    /// `raw-alias-undeclared`, `foreign-map-unjustified`,
    /// `undeclared-sharing-edge`).
    pub rule: &'static str,
    /// Human-readable description of the mismatch.
    pub detail: String,
    /// Index into the op trace of the hypercall that surfaced it.
    pub op_index: usize,
}

/// The checker state behind the hook.
pub struct SpecCore {
    spec: SpecState,
    divergence: Option<Divergence>,
    ops: Vec<String>,
    checks: u64,
    /// Domains whose owned-frame sets may legitimately change at the
    /// next check (declared direct writes; consumed per step).
    pending_writes: BTreeSet<DomId>,
    /// Synthetic raw-alias fixtures for the selftest: `(mfn, mappers)`
    /// pairs fed into the visibility rule as non-CoW shares.
    injected_frames: Vec<(u64, Vec<DomId>)>,
}

impl SpecCore {
    fn new(spec: SpecState) -> Self {
        SpecCore {
            spec,
            divergence: None,
            ops: Vec::new(),
            checks: 0,
            pending_writes: BTreeSet::new(),
            injected_frames: Vec::new(),
        }
    }

    fn diverge(&mut self, rule: &'static str, detail: String) {
        if self.divergence.is_none() {
            self.divergence = Some(Divergence {
                rule,
                detail,
                op_index: self.ops.len().saturating_sub(1),
            });
        }
    }

    /// One lockstep step: advance the model for (`call`, `result`) and
    /// check refinement against the post-state `hv`.
    fn step(
        &mut self,
        hv: &Hypervisor,
        caller: DomId,
        call: &Hypercall,
        result: &HvResult<HypercallRet>,
    ) {
        if self.divergence.is_some() {
            return; // sticky: keep the first divergence and its trace
        }
        self.ops.push(format_op(caller, call, result.is_ok()));
        let mut writes = std::mem::take(&mut self.pending_writes);
        let mut declared_footprint = false;
        self.advance(
            hv,
            caller,
            call,
            result,
            &mut writes,
            &mut declared_footprint,
        );
        self.check_refinement(hv, &writes, declared_footprint);
        self.checks += 1;
    }

    /// Applies the spec-level semantics of one (sub-)call. Populates
    /// `writes` with domains whose frame ownership the op may touch and
    /// flags `declared` when the op may extend the sharing ledger.
    fn advance(
        &mut self,
        hv: &Hypervisor,
        caller: DomId,
        call: &Hypercall,
        result: &HvResult<HypercallRet>,
        writes: &mut BTreeSet<DomId>,
        declared: &mut bool,
    ) {
        use Hypercall::*;
        let Ok(ret) = result else {
            // Failed ops must leave spec-visible state alone, with one
            // deliberate exception mirroring the real gate:
            // `accept_transfer` consumes the table entry *before* the
            // memory-side transfer can still fail (e.g. a duplicate
            // offer whose frame already moved), so a failing accept may
            // legitimately spend the offer without moving ownership.
            if let GnttabAcceptTransfer { granter, gref } = call {
                let real_has = hv
                    .grant_table(*granter)
                    .and_then(|t| t.entry(*gref))
                    .is_some();
                if !real_has {
                    self.spec.grants.remove(&(*granter, gref.0));
                }
            }
            return;
        };
        match call {
            GnttabGrantAccess {
                grantee,
                pfn,
                access,
            } => {
                if let HypercallRet::GrantRef(r) = ret {
                    self.grant_added(hv, caller, r.0, *grantee, pfn.0, *access);
                    // Granting privatises the page first (CoW break),
                    // so the granter's ownership may change.
                    writes.insert(caller);
                    *declared = true;
                }
            }
            GnttabForeignSetup {
                owner,
                grantee,
                pfn,
                access,
            } => {
                if let HypercallRet::GrantRef(r) = ret {
                    self.grant_added(hv, *owner, r.0, *grantee, pfn.0, *access);
                    writes.insert(*owner);
                    *declared = true;
                }
            }
            GnttabGrantTransfer { grantee, pfn } => {
                if let HypercallRet::GrantRef(r) = ret {
                    self.grant_added(hv, caller, r.0, *grantee, pfn.0, GrantAccess::Transfer);
                    writes.insert(caller);
                    *declared = true;
                }
            }
            GnttabEndAccess { gref } => {
                if let Some(fact) = self.spec.grants.remove(&(caller, gref.0)) {
                    self.spec.revoked.push((caller, fact));
                }
            }
            GnttabAcceptTransfer { granter, gref } => {
                // Ownership of the offered frame moves granter → caller.
                self.spec.grants.remove(&(*granter, gref.0));
                writes.insert(*granter);
                writes.insert(caller);
            }
            GnttabCopyBatch { granter, .. } => {
                // Hypervisor-mediated page writes on both ends; either
                // side may take a CoW break.
                writes.insert(caller);
                writes.insert(*granter);
            }
            MmuMapForeign { target, .. } | MmuWriteForeign { target, .. } => {
                if !self.spec.blanket.contains(&caller)
                    && !self.spec.priv_for.contains(&(caller, *target))
                {
                    self.diverge(
                        "foreign-map-unjustified",
                        format!(
                            "{caller} mapped {target}'s memory without blanket or \
                             privileged-for justification in the model"
                        ),
                    );
                }
                if matches!(call, MmuWriteForeign { .. }) {
                    writes.insert(*target);
                }
            }
            MemoryPopulate { target, .. } => {
                writes.insert(*target);
            }
            DomctlCreateDomain { .. } => {
                if let HypercallRet::DomId(d) = ret {
                    self.spec.live.insert(*d);
                    self.spec.owned.insert(*d, 0);
                    *declared = true;
                }
            }
            DomctlCloneDomain { template, .. } => {
                if let HypercallRet::DomId(c) = ret {
                    self.spec.live.insert(*c);
                    self.spec.clone_of.insert(*c, *template);
                    // The clone op stamps ring frames and replays the
                    // template's grant plan; both are part of the op's
                    // declared semantics, so capture them as justified.
                    writes.insert(*c);
                    if let Some(table) = hv.grant_table(*c) {
                        for (gref, e) in table.entries_sorted() {
                            self.spec.grants.insert(
                                (*c, gref.0),
                                GrantFact {
                                    grantee: e.grantee,
                                    pfn: e.pfn.0,
                                    mfn: e.mfn.0,
                                    access: e.access,
                                },
                            );
                        }
                    }
                    *declared = true;
                }
            }
            DomctlDestroyDomain { target } => {
                self.domain_died(hv, *target, writes);
                *declared = true;
            }
            DomctlPauseDomain { .. }
            | DomctlUnpauseDomain { .. }
            | DomctlSetMaxMem { .. }
            | DomctlSetVcpus { .. }
            | DomctlAssignDevice { .. }
            | DomctlDelegate { .. }
            | DomctlSetRole { .. }
            | DomctlSetPrivilegedFor { .. }
            | DomctlIoPortPermission { .. }
            | DomctlMmioPermission { .. }
            | DomctlIrqPermission { .. }
            | DomctlPermitHypercall { .. } => {
                // Privilege surgery: no memory or grant effects, but the
                // derived blanket/foreign edges may shift.
                *declared = true;
            }
            EvtchnBindInterdomain { remote, .. } => {
                let (a, b) = (caller.min(*remote), caller.max(*remote));
                self.spec.declared.insert(("event", a, b));
                *declared = true;
            }
            EvtchnAllocUnbound { .. }
            | EvtchnBindVirq { .. }
            | EvtchnSend { .. }
            | EvtchnClose { .. }
            | GnttabMapGrantRef { .. }
            | GnttabUnmapGrantRef { .. }
            | GnttabMapBatch { .. }
            | GnttabUnmapBatch { .. }
            | VmSnapshot
            | SysctlPhysinfo
            | SchedYield
            | ConsoleWrite { .. } => {}
            VmRollback { .. } => {
                // The spec of rollback: page *contents* revert, nothing
                // else. No ownership delta, no grant-table delta — a
                // rollback that resurrects a revoked grant diverges at
                // the table check.
            }
            Multicall { calls } => {
                if let HypercallRet::Multi(results) = ret {
                    for (sub, sub_result) in calls.iter().zip(results.iter()) {
                        self.advance(hv, caller, sub, sub_result, writes, declared);
                        if self.divergence.is_some() {
                            return;
                        }
                    }
                }
            }
        }
    }

    fn grant_added(
        &mut self,
        hv: &Hypervisor,
        granter: DomId,
        gref: u32,
        grantee: DomId,
        pfn: u64,
        access: GrantAccess,
    ) {
        let mfn = hv
            .grant_table(granter)
            .and_then(|t| t.entry(xoar_hypervisor::grant::GrantRef(gref)))
            .map(|e| e.mfn.0)
            .unwrap_or(u64::MAX);
        let fact = GrantFact {
            grantee,
            pfn,
            mfn,
            access,
        };
        // A legitimate re-grant clears the revocation: the capability
        // exists again by the granter's own (modeled) choice.
        self.spec
            .revoked
            .retain(|(g, f)| *g != granter || !f.same_capability(&fact));
        self.spec.grants.insert((granter, gref), fact);
        self.spec.declared.insert(("grant", grantee, granter));
    }

    fn domain_died(&mut self, hv: &Hypervisor, target: DomId, writes: &mut BTreeSet<DomId>) {
        // A control-VM destroy reboots the host and takes every domain
        // with it; diff the model's live set against reality.
        let mut died: Vec<DomId> = Vec::new();
        for &d in &self.spec.live {
            let dead = match hv.domain(d) {
                Ok(dom) => dom.state == xoar_hypervisor::DomainState::Dead,
                Err(_) => true,
            };
            if dead || d == target {
                died.push(d);
            }
        }
        for d in died {
            self.spec.live.remove(&d);
            self.spec.owned.remove(&d);
            self.spec.clone_of.remove(&d);
            self.spec.grants.retain(|&(granter, _), _| granter != d);
            writes.insert(d);
        }
    }

    /// The refinement check proper: diff real state against the model.
    fn check_refinement(&mut self, hv: &Hypervisor, writes: &BTreeSet<DomId>, declared: bool) {
        if self.divergence.is_some() {
            return;
        }
        self.check_grant_tables(hv);
        if self.divergence.is_none() {
            self.check_ownership(hv, writes);
        }
        if self.divergence.is_none() {
            self.check_visibility(hv);
        }
        if self.divergence.is_none() {
            self.check_declared(hv, declared);
        }
        // Privilege relation is an input to the next step's
        // justification; refresh it once this step checked out.
        if self.divergence.is_none() {
            self.spec.sync_privileges(hv);
        }
    }

    fn check_grant_tables(&mut self, hv: &Hypervisor) {
        for &granter in &self.spec.live.clone() {
            let real: Vec<(u32, GrantFact)> = hv
                .grant_table(granter)
                .map(|t| {
                    t.entries_sorted()
                        .into_iter()
                        .map(|(gref, e)| {
                            (
                                gref.0,
                                GrantFact {
                                    grantee: e.grantee,
                                    pfn: e.pfn.0,
                                    mfn: e.mfn.0,
                                    access: e.access,
                                },
                            )
                        })
                        .collect()
                })
                .unwrap_or_default();
            let modeled = self.spec.grants_by(granter);
            for &(gref, fact) in &real {
                if modeled.iter().any(|&(g, f)| g == gref && f == fact) {
                    continue;
                }
                let resurrected = self
                    .spec
                    .revoked
                    .iter()
                    .any(|(g, f)| *g == granter && f.same_capability(&fact));
                if resurrected {
                    self.diverge(
                        "revoked-grant-resurrected",
                        format!(
                            "{granter}'s table holds gref {gref} ({:?} pfn {} to {}), \
                             a capability the model saw revoked and never re-granted",
                            fact.access, fact.pfn, fact.grantee
                        ),
                    );
                } else {
                    self.diverge(
                        "unjustified-grant-entry",
                        format!(
                            "{granter}'s table holds gref {gref} ({:?} pfn {} to {}) \
                             with no corresponding model fact",
                            fact.access, fact.pfn, fact.grantee
                        ),
                    );
                }
                return;
            }
            for &(gref, fact) in &modeled {
                if !real.iter().any(|&(g, f)| g == gref && f == fact) {
                    self.diverge(
                        "grant-entry-vanished",
                        format!(
                            "model holds {granter} gref {gref} ({:?} pfn {} to {}) \
                             but the real table does not",
                            fact.access, fact.pfn, fact.grantee
                        ),
                    );
                    return;
                }
            }
        }
    }

    fn check_ownership(&mut self, hv: &Hypervisor, writes: &BTreeSet<DomId>) {
        // A domain writing its own space may break CoW against its
        // template; the template side never changes, so the closure of
        // the footprint is the writers plus nothing else.
        let allowed = |d: DomId, writes: &BTreeSet<DomId>| writes.contains(&d);
        if self.spec.owner_exact {
            let mut real: std::collections::BTreeMap<u64, DomId> =
                std::collections::BTreeMap::new();
            for &d in &self.spec.live {
                for (_, mfn) in hv.mem.p2m_entries(d) {
                    if let Ok(o) = hv.mem.owner(mfn) {
                        real.insert(mfn.0, o);
                    }
                }
            }
            for (&mfn, &owner) in &real {
                match self.spec.owner.get(&mfn) {
                    None if !allowed(owner, writes) => {
                        self.diverge(
                            "unjustified-ownership-change",
                            format!(
                                "frame {mfn} appeared owned by {owner} outside the op footprint"
                            ),
                        );
                        return;
                    }
                    Some(&prev) if prev != owner => {
                        if !allowed(prev, writes) || !allowed(owner, writes) {
                            self.diverge(
                                "unjustified-ownership-change",
                                format!(
                                    "frame {mfn} changed owner {prev} → {owner} outside \
                                     the op footprint"
                                ),
                            );
                            return;
                        }
                    }
                    _ => {}
                }
            }
            for (&mfn, &prev) in &self.spec.owner {
                if !real.contains_key(&mfn) && !allowed(prev, writes) {
                    self.diverge(
                        "unjustified-ownership-change",
                        format!("frame {mfn} owned by {prev} vanished outside the op footprint"),
                    );
                    return;
                }
            }
        } else {
            for &d in &self.spec.live {
                let now = hv.mem.owned_frames(d);
                let before = self.spec.owned.get(&d).copied().unwrap_or(0);
                if now != before && !allowed(d, writes) {
                    self.diverge(
                        "unjustified-ownership-change",
                        format!("{d}'s owned-frame count moved {before} → {now} outside the op footprint"),
                    );
                    return;
                }
            }
        }
        self.spec.sync_owner_views(hv);
    }

    fn check_visibility(&mut self, hv: &Hypervisor) {
        let shared = hv.mem.multi_domain_frames();
        for (mfn, doms) in &shared {
            let mappers: BTreeSet<DomId> =
                hv.mem.mappers(*mfn).into_iter().map(|(d, _)| d).collect();
            for (i, &a) in doms.iter().enumerate() {
                for &b in doms.iter().skip(i + 1) {
                    if mappers.contains(&a) && mappers.contains(&b) {
                        // Refs-backed share: the hypervisor's own CoW
                        // machinery (content dedup, snapshot baselines).
                        // Identical content, private again on write.
                        continue;
                    }
                    // At least one side reaches the frame by clone
                    // fall-through; the model must know the link. A
                    // refs-backed sharer may also meet a clone through
                    // the clone's template, if that template is a
                    // legitimate co-mapper of the frame.
                    let via_template = |clone: DomId, other: DomId| {
                        self.spec
                            .clone_of
                            .get(&clone)
                            .is_some_and(|t| mappers.contains(t) && mappers.contains(&other))
                    };
                    if self.spec.clone_linked(a, b) || via_template(a, b) || via_template(b, a) {
                        continue;
                    }
                    self.diverge(
                        "undeclared-clone-fanthrough",
                        format!(
                            "frame {} is read-visible to both {a} and {b} by clone \
                             fall-through, but the model records no clone link",
                            mfn.0
                        ),
                    );
                    return;
                }
            }
        }
        for (mfn, doms) in &self.injected_frames.clone() {
            for (i, &a) in doms.iter().enumerate() {
                for &b in doms.iter().skip(i + 1) {
                    if self.spec.declares_sharing(a, b) || self.spec.clone_linked(a, b) {
                        continue;
                    }
                    self.diverge(
                        "raw-alias-undeclared",
                        format!(
                            "frame {mfn} is raw-aliased between {a} and {b} with no \
                             declared sharing edge"
                        ),
                    );
                    return;
                }
            }
        }
    }

    fn check_declared(&mut self, hv: &Hypervisor, footprint: bool) {
        let real: BTreeSet<(&'static str, DomId, DomId)> = hv.declared_ops().into_iter().collect();
        if footprint {
            // The op legitimately reshapes the ledger (new grants,
            // privilege surgery, domain lifecycle): adopt it.
            self.spec.declared = real;
            return;
        }
        if real != self.spec.declared {
            let added: Vec<_> = real.difference(&self.spec.declared).collect();
            let removed: Vec<_> = self.spec.declared.difference(&real).collect();
            self.diverge(
                "undeclared-sharing-edge",
                format!(
                    "sharing ledger drifted on an op with no declaration \
                     footprint (added {added:?}, removed {removed:?})"
                ),
            );
        }
    }
}

/// The [`DispatchHook`] installed on the hypercall gate.
///
/// Thin wrapper: the state lives behind an `Rc<RefCell<_>>` shared with
/// the driver-side [`SpecHandle`], so divergences and the op trace stay
/// readable while the hypervisor owns the hook.
pub struct SpecChecker {
    core: Rc<RefCell<SpecCore>>,
}

impl DispatchHook for SpecChecker {
    fn after_hypercall(
        &mut self,
        hv: &Hypervisor,
        caller: DomId,
        call: &Hypercall,
        result: &HvResult<HypercallRet>,
    ) {
        if let Ok(mut core) = self.core.try_borrow_mut() {
            core.step(hv, caller, call, result);
        }
    }

    fn divergence(&self) -> Option<String> {
        self.core.try_borrow().ok().and_then(|c| {
            c.divergence
                .as_ref()
                .map(|d| format!("{}: {}", d.rule, d.detail))
        })
    }
}

/// Driver-side handle to an attached checker.
pub struct SpecHandle {
    core: Rc<RefCell<SpecCore>>,
}

impl SpecHandle {
    /// Captures the abstraction of `hv` and installs the lockstep
    /// checker on its dispatch path. From this point every hypercall is
    /// checked; the returned handle reads results out.
    pub fn attach(hv: &mut Hypervisor) -> SpecHandle {
        let core = Rc::new(RefCell::new(SpecCore::new(SpecState::capture(hv))));
        hv.set_dispatch_hook(Box::new(SpecChecker { core: core.clone() }));
        SpecHandle { core }
    }

    /// The first divergence, if the implementation ever left the model.
    pub fn divergence(&self) -> Option<Divergence> {
        self.core.borrow().divergence.clone()
    }

    /// The op trace observed so far (one line per hypercall).
    pub fn ops(&self) -> Vec<String> {
        self.core.borrow().ops.clone()
    }

    /// Number of lockstep checks performed.
    pub fn checks(&self) -> u64 {
        self.core.borrow().checks
    }

    /// A clone of the current model state, for noninterference queries.
    pub fn state(&self) -> SpecState {
        self.core.borrow().spec.clone()
    }

    /// Declares an imminent direct write by `dom` to its own memory
    /// (guest writes are not hypercalls). The CoW break it may cause is
    /// justified at the next check.
    pub fn note_write(&self, dom: DomId) {
        self.core.borrow_mut().pending_writes.insert(dom);
    }

    /// Selftest fixture: injects a synthetic raw (non-CoW) alias of
    /// `mfn` between `doms`, checked against declared sharing at every
    /// subsequent step.
    pub fn inject_raw_alias(&self, mfn: u64, doms: Vec<DomId>) {
        self.core.borrow_mut().injected_frames.push((mfn, doms));
    }

    /// Renders the divergence (if any) with its reproducing op trace.
    pub fn report(&self) -> Option<String> {
        let core = self.core.borrow();
        let d = core.divergence.as_ref()?;
        let mut out = String::new();
        let _ = writeln!(out, "divergence: {} — {}", d.rule, d.detail);
        let _ = writeln!(out, "op trace ({} ops):", core.ops.len());
        for (i, op) in core.ops.iter().enumerate() {
            let marker = if i == d.op_index {
                " <-- diverged here"
            } else {
                ""
            };
            let _ = writeln!(out, "  {:>3}. {op}{marker}", i + 1);
        }
        Some(out)
    }
}

/// Compact one-line rendering of an op for the reproducing trace.
fn format_op(caller: DomId, call: &Hypercall, ok: bool) -> String {
    let status = if ok { "ok" } else { "err" };
    format!("{caller}: {} -> {status}", call_name(call))
}

fn call_name(call: &Hypercall) -> String {
    use Hypercall::*;
    match call {
        GnttabGrantAccess {
            grantee,
            pfn,
            access,
        } => format!("GrantAccess(pfn {} -> {grantee}, {access:?})", pfn.0),
        GnttabEndAccess { gref } => format!("EndAccess(gref {})", gref.0),
        GnttabGrantTransfer { grantee, pfn } => {
            format!("GrantTransfer(pfn {} -> {grantee})", pfn.0)
        }
        GnttabAcceptTransfer { granter, gref } => {
            format!("AcceptTransfer({granter} gref {})", gref.0)
        }
        GnttabMapGrantRef { granter, gref } => format!("MapGrantRef({granter} gref {})", gref.0),
        GnttabUnmapGrantRef { granter, gref } => {
            format!("UnmapGrantRef({granter} gref {})", gref.0)
        }
        GnttabMapBatch { granter, refs } => format!("MapBatch({granter}, {} refs)", refs.len()),
        GnttabUnmapBatch { granter, refs } => {
            format!("UnmapBatch({granter}, {} refs)", refs.len())
        }
        GnttabCopyBatch { granter, ops } => format!("CopyBatch({granter}, {} ops)", ops.len()),
        GnttabForeignSetup { owner, grantee, .. } => {
            format!("ForeignSetup({owner} -> {grantee})")
        }
        DomctlCreateDomain { name, .. } => format!("CreateDomain({name:?})"),
        DomctlCloneDomain { template, name } => format!("CloneDomain({template} -> {name:?})"),
        DomctlDestroyDomain { target } => format!("DestroyDomain({target})"),
        VmSnapshot => "VmSnapshot".to_string(),
        VmRollback { target } => format!("VmRollback({target})"),
        MemoryPopulate { target, frames } => format!("MemoryPopulate({target}, {frames})"),
        MmuMapForeign { target, pfn } => format!("MapForeign({target} pfn {})", pfn.0),
        MmuWriteForeign { target, pfn, .. } => format!("WriteForeign({target} pfn {})", pfn.0),
        SchedYield => "SchedYield".to_string(),
        Multicall { calls } => format!("Multicall({} calls)", calls.len()),
        other => format!("{:?}", other.id()),
    }
}
