//! Small-scope interleaving driver and checker selftest.
//!
//! Alloy-style small-scope hypothesis: if the hypervisor can diverge
//! from the isolation spec, it can do so in a tiny world. [`exhaustive`]
//! therefore enumerates *every* op sequence (up to a length) over a
//! 2 MiB host with a manager, two guests, and a sealed template,
//! checking each hypercall in lockstep; [`random_sweep`] extends reach
//! to longer sequences with the in-tree property harness, shrinking any
//! divergence to a minimal reproducing op trace.
//!
//! [`selftest`] proves the oracle itself has teeth: three known
//! violations — a resurrected revoked grant, an undeclared clone
//! fall-through wired behind the model's back, and a raw frame alias —
//! are injected and each must fire its distinct rule, reported with a
//! shrunk counterexample trace and a copy-pasteable regression test.

use std::rc::Rc;

use xoar_hypervisor::domain::DomainRole;
use xoar_hypervisor::grant::{GrantAccess, GrantCopyDir, GrantCopyOp, GrantRef};
use xoar_hypervisor::hypercall::Hypercall;
use xoar_hypervisor::memory::Pfn;
use xoar_hypervisor::{DomId, HostConfig, Hypervisor, PrivilegeSet};
use xoar_sim::prop::{replay_test_body, Gen, Runner};

use super::checker::{Divergence, SpecHandle};

/// Number of ops in the small-scope alphabet.
pub const ALPHABET: usize = 15;

/// Human-readable names of the alphabet, indexed by op number.
pub const OP_NAMES: [&str; ALPHABET] = [
    "A grants pfn1 -> B (RW)",
    "A grants pfn2 -> B (RO)",
    "B maps (A, gref0)",
    "B maps (A, gref1)",
    "B unmaps (A, gref0)",
    "A ends gref0",
    "A offers transfer pfn3 -> B",
    "B accepts A's transfer",
    "A snapshots itself",
    "mgr rolls A back",
    "mgr clones template",
    "mgr maps A pfn0 foreign",
    "A writes own pfn1",
    "newest clone writes pfn0",
    "B grant-copies (A, gref1) -> local pfn0",
];

/// The 2 MiB, four-domain world every sequence starts from.
pub struct SmallWorld {
    /// The hypervisor under test.
    pub hv: Hypervisor,
    /// Privileged manager (Dom0-style toolstack).
    pub mgr: DomId,
    /// Unprivileged guest A (granter in most ops).
    pub a: DomId,
    /// Backend shard B, delegated to A (grantee / mapper).
    pub b: DomId,
    /// Built guest used as the clone template.
    pub tpl: DomId,
    /// Clones stamped so far, in creation order.
    pub clones: Vec<DomId>,
}

/// Builds the small world: 512 frames total, manager with Dom0
/// privileges, guest A and backend shard B (delegated to A) with 8
/// populated frames each, and a 4-frame template ready to clone.
pub fn small_world() -> SmallWorld {
    let mut hv = Hypervisor::new(HostConfig {
        memory_mib: 2,
        cpus: 1,
    });
    let mgr = hv
        .create_boot_domain("mgr", DomainRole::ControlVm, 1, PrivilegeSet::dom0())
        .expect("boot mgr");
    let build_guest = |hv: &mut Hypervisor, name: &str, frames: u64| -> DomId {
        let id = hv
            .hypercall(
                mgr,
                Hypercall::DomctlCreateDomain {
                    name: name.into(),
                    memory_mib: 1,
                    vcpus: 1,
                },
            )
            .and_then(|r| r.dom_id())
            .expect("create");
        hv.hypercall(mgr, Hypercall::MemoryPopulate { target: id, frames })
            .expect("populate");
        hv.hypercall(mgr, Hypercall::DomctlUnpauseDomain { target: id })
            .expect("unpause");
        id
    };
    let a = build_guest(&mut hv, "A", 8);
    let b = build_guest(&mut hv, "B", 8);
    let tpl = build_guest(&mut hv, "tpl", 4);
    // IVC policy (§5.6) requires one end of every grant to be a shard
    // delegated to the guest end: B plays the backend-shard role here.
    hv.hypercall(
        mgr,
        Hypercall::DomctlSetRole {
            target: b,
            shard: true,
        },
    )
    .expect("make B a shard");
    if let Ok(d) = hv.domain_mut(a) {
        d.delegated_shards.insert(b);
    }
    SmallWorld {
        hv,
        mgr,
        a,
        b,
        tpl,
        clones: Vec::new(),
    }
}

/// Applies op `op` (mod [`ALPHABET`]) to the world. Failing hypercalls
/// are part of the state space (the checker verifies they change
/// nothing); direct writes are announced to the model and followed by a
/// scheduler tick so they are checked immediately.
pub fn apply_op(w: &mut SmallWorld, h: &SpecHandle, op: usize) {
    use Hypercall::*;
    let (mgr, a, b, tpl) = (w.mgr, w.a, w.b, w.tpl);
    let tick = |w: &mut SmallWorld| {
        let _ = w.hv.hypercall(mgr, SchedYield);
    };
    match op % ALPHABET {
        0 => {
            let _ = w.hv.hypercall(
                a,
                GnttabGrantAccess {
                    grantee: b,
                    pfn: Pfn(1),
                    access: GrantAccess::ReadWrite,
                },
            );
        }
        1 => {
            let _ = w.hv.hypercall(
                a,
                GnttabGrantAccess {
                    grantee: b,
                    pfn: Pfn(2),
                    access: GrantAccess::ReadOnly,
                },
            );
        }
        2 => {
            let _ = w.hv.hypercall(
                b,
                GnttabMapGrantRef {
                    granter: a,
                    gref: GrantRef(0),
                },
            );
        }
        3 => {
            let _ = w.hv.hypercall(
                b,
                GnttabMapGrantRef {
                    granter: a,
                    gref: GrantRef(1),
                },
            );
        }
        4 => {
            let _ = w.hv.hypercall(
                b,
                GnttabUnmapGrantRef {
                    granter: a,
                    gref: GrantRef(0),
                },
            );
        }
        5 => {
            let _ = w.hv.hypercall(a, GnttabEndAccess { gref: GrantRef(0) });
        }
        6 => {
            let _ = w.hv.hypercall(
                a,
                GnttabGrantTransfer {
                    grantee: b,
                    pfn: Pfn(3),
                },
            );
        }
        7 => {
            let gref =
                w.hv.grant_table(a)
                    .and_then(|t| {
                        t.entries_sorted()
                            .into_iter()
                            .find(|(_, e)| e.grantee == b && e.access == GrantAccess::Transfer)
                            .map(|(g, _)| g)
                    })
                    .unwrap_or(GrantRef(0));
            let _ = w.hv.hypercall(b, GnttabAcceptTransfer { granter: a, gref });
        }
        8 => {
            let _ = w.hv.hypercall(a, VmSnapshot);
        }
        9 => {
            let _ = w.hv.hypercall(mgr, VmRollback { target: a });
        }
        10 => {
            let name = format!("c{}", w.clones.len());
            if let Ok(ret) = w.hv.hypercall(
                mgr,
                DomctlCloneDomain {
                    template: tpl,
                    name,
                },
            ) {
                if let Ok(c) = ret.dom_id() {
                    w.clones.push(c);
                }
            }
        }
        11 => {
            let _ = w.hv.hypercall(
                mgr,
                MmuMapForeign {
                    target: a,
                    pfn: Pfn(0),
                },
            );
        }
        12 => {
            h.note_write(a);
            let _ = w.hv.mem.write(a, Pfn(1), b"spec-driver-own-write");
            tick(w);
        }
        13 => {
            if let Some(&c) = w.clones.last() {
                h.note_write(c);
                let _ = w.hv.mem.write(c, Pfn(0), b"spec-driver-clone-write");
            }
            tick(w);
        }
        _ => {
            let ops: Rc<[GrantCopyOp]> = Rc::from(
                [GrantCopyOp {
                    gref: GrantRef(1),
                    dir: GrantCopyDir::FromGrant,
                    local_pfn: Pfn(0),
                }]
                .as_slice(),
            );
            let _ = w.hv.hypercall(b, GnttabCopyBatch { granter: a, ops });
        }
    }
}

/// Result of an exhaustive small-scope enumeration.
#[derive(Debug)]
pub struct ExhaustiveReport {
    /// Sequence length enumerated.
    pub length: usize,
    /// Number of sequences executed (`ALPHABET^length`).
    pub sequences: u64,
    /// Total ops applied across all sequences.
    pub ops_applied: u64,
    /// Total lockstep checks performed by the checker.
    pub checks: u64,
    /// Divergences found: `(op sequence, divergence)`. Empty on a
    /// correct hypervisor.
    pub divergences: Vec<(Vec<usize>, Divergence)>,
}

/// Enumerates every op sequence of exactly `length` over the alphabet,
/// running each against a fresh small world with the checker attached.
pub fn exhaustive(length: usize) -> ExhaustiveReport {
    let sequences = (ALPHABET as u64).pow(length as u32);
    let mut report = ExhaustiveReport {
        length,
        sequences,
        ops_applied: 0,
        checks: 0,
        divergences: Vec::new(),
    };
    let mut seq = vec![0usize; length];
    for n in 0..sequences {
        let mut k = n;
        for slot in seq.iter_mut() {
            *slot = (k % ALPHABET as u64) as usize;
            k /= ALPHABET as u64;
        }
        let mut w = small_world();
        let h = SpecHandle::attach(&mut w.hv);
        for &op in &seq {
            apply_op(&mut w, &h, op);
            report.ops_applied += 1;
            if h.divergence().is_some() {
                break;
            }
        }
        report.checks += h.checks();
        if let Some(d) = h.divergence() {
            report.divergences.push((seq.clone(), d));
        }
    }
    report
}

/// Randomized sweep: `cases` sequences of up to `max_len` ops drawn by
/// the property harness. Returns `None` when every sequence refines the
/// spec; otherwise the shrunk minimal choice sequence and a rendered
/// report (decoded op trace + divergence + regression-test body).
pub fn random_sweep(cases: u32, max_len: usize) -> Option<(Vec<u64>, String)> {
    let property = move |g: &mut Gen| {
        let mut w = small_world();
        let h = SpecHandle::attach(&mut w.hv);
        let n = g.usize(0..max_len + 1);
        for _ in 0..n {
            let op = g.usize(0..ALPHABET);
            apply_op(&mut w, &h, op);
            if let Some(report) = h.report() {
                panic!("spec divergence:\n{report}");
            }
        }
    };
    let minimal = Runner::cases(cases).counterexample(property)?;
    let report = decode_and_render("spec random sweep", &minimal, None);
    Some((minimal, report))
}

/// One selftest scenario: which violation is injected and how it fared.
#[derive(Debug)]
pub struct SelftestOutcome {
    /// The rule the injection must fire.
    pub rule: &'static str,
    /// Whether the checker caught it.
    pub fired: bool,
    /// Rendered report: shrunk op trace, divergence, regression body.
    pub report: String,
}

/// Index of each injection, used past the real alphabet.
const INJECT_RESURRECT: usize = ALPHABET;
const INJECT_BACKDOOR_CLONE: usize = ALPHABET + 1;
const INJECT_RAW_ALIAS: usize = ALPHABET + 2;

/// Applies one injection after the drawn prefix: a known violation the
/// checker must catch. Returns a description for the decoded trace.
fn apply_injection(w: &mut SmallWorld, h: &SpecHandle, inject: usize) -> &'static str {
    let (mgr, a, b, tpl) = (w.mgr, w.a, w.b, w.tpl);
    match inject {
        INJECT_RESURRECT => {
            // A buggy rollback path re-installing a revoked entry is
            // simulated by re-granting out-of-band (no hypercall, so
            // the model never sees a re-grant).
            let _ = w.hv.boot_grant(a, b, Pfn(1), GrantAccess::ReadWrite);
            let _ = w.hv.hypercall(mgr, Hypercall::SchedYield);
            "INJECT: out-of-band re-grant of A pfn1 -> B (RW)"
        }
        INJECT_BACKDOOR_CLONE => {
            // A clone space wired up behind the dispatch path: the
            // model records no clone link, so the fall-through
            // visibility is undeclared.
            let shell =
                w.hv.hypercall(
                    mgr,
                    Hypercall::DomctlCreateDomain {
                        name: "backdoor".into(),
                        memory_mib: 1,
                        vcpus: 1,
                    },
                )
                .and_then(|r| r.dom_id())
                .ok();
            if let Some(shell) = shell {
                let _ = w.hv.mem.template_arm(tpl);
                let _ = w.hv.mem.clone_space(tpl, shell);
            }
            let _ = w.hv.hypercall(mgr, Hypercall::SchedYield);
            "INJECT: backdoor clone_space(tpl -> fresh shell) behind the gate"
        }
        _ => {
            // Synthetic raw alias: two guests sharing a frame with no
            // CoW pedigree and no declared edge.
            h.inject_raw_alias(999_001, vec![a, b]);
            let _ = w.hv.hypercall(mgr, Hypercall::SchedYield);
            "INJECT: raw alias of mfn 999001 between A and B"
        }
    }
}

/// Runs one injection scenario: random op prefixes followed by the
/// injection, shrunk to the minimal prefix that makes `rule` fire.
fn selftest_rule(rule: &'static str, inject: usize) -> SelftestOutcome {
    let property = move |g: &mut Gen| {
        let mut w = small_world();
        let h = SpecHandle::attach(&mut w.hv);
        let n = g.usize(0..6);
        for _ in 0..n {
            let op = g.usize(0..ALPHABET);
            apply_op(&mut w, &h, op);
            if h.divergence().is_some() {
                return; // a prefix alone must never diverge
            }
        }
        apply_injection(&mut w, &h, inject);
        if let Some(d) = h.divergence() {
            assert!(d.rule != rule, "injection caught: {}", d.rule);
        }
    };
    match Runner::cases(400).counterexample(property) {
        Some(minimal) => {
            let report = decode_and_render(rule, &minimal, Some(inject));
            SelftestOutcome {
                rule,
                fired: true,
                report,
            }
        }
        None => SelftestOutcome {
            rule,
            fired: false,
            report: format!("rule {rule} did NOT fire on its injection"),
        },
    }
}

/// Injects the three known violations and reports whether each fired
/// with its distinct rule and a shrunk counterexample trace.
pub fn selftest() -> Vec<SelftestOutcome> {
    vec![
        selftest_rule("revoked-grant-resurrected", INJECT_RESURRECT),
        selftest_rule("undeclared-clone-fanthrough", INJECT_BACKDOOR_CLONE),
        selftest_rule("raw-alias-undeclared", INJECT_RAW_ALIAS),
    ]
}

/// Replays a shrunk choice sequence, decoding it into the op trace it
/// drives, and renders trace + divergence + a copy-pasteable
/// regression-test body.
fn decode_and_render(name: &str, minimal: &[u64], inject: Option<usize>) -> String {
    use std::fmt::Write as _;
    let mut trace: Vec<String> = Vec::new();
    let mut divergence = String::new();
    let replay = |g: &mut Gen| {
        let mut w = small_world();
        let h = SpecHandle::attach(&mut w.hv);
        let n = g.usize(0..6);
        for _ in 0..n {
            let op = g.usize(0..ALPHABET);
            apply_op(&mut w, &h, op);
        }
        if let Some(inject) = inject {
            if h.divergence().is_none() {
                apply_injection(&mut w, &h, inject);
            }
        }
        (h.ops(), h.report())
    };
    // Decode outside the panic machinery: run the replay directly.
    let mut g_ops: Option<(Vec<String>, Option<String>)> = None;
    let _ = Runner::check_replay(minimal, |g| {
        g_ops = Some(replay(g));
    });
    if let Some((ops, report)) = g_ops {
        trace = ops;
        if let Some(r) = report {
            divergence = r;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "  minimal choice sequence: {minimal:?}");
    let _ = writeln!(out, "  checked op trace ({} ops):", trace.len());
    for (i, op) in trace.iter().enumerate() {
        let _ = writeln!(out, "    {:>3}. {op}", i + 1);
    }
    if !divergence.is_empty() {
        for line in divergence.lines() {
            let _ = writeln!(out, "  {line}");
        }
    }
    let _ = writeln!(out, "  regression test:");
    for line in replay_test_body(name, minimal).lines() {
        let _ = writeln!(out, "    {line}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_world_runs_a_rich_sequence_without_divergence() {
        let mut w = small_world();
        let h = SpecHandle::attach(&mut w.hv);
        // grant, map, copy, snapshot, write, rollback, transfer,
        // accept, clone, clone-write, end — one of everything.
        for op in [0, 1, 2, 14, 8, 12, 9, 6, 7, 10, 13, 4, 5, 11] {
            apply_op(&mut w, &h, op);
            assert!(
                h.divergence().is_none(),
                "op {op} diverged:\n{}",
                h.report().unwrap_or_default()
            );
        }
        assert!(h.checks() >= 14, "every hypercall must be checked");
        let s = h.state();
        assert!(s.clone_of.contains_key(&w.clones[0]));
    }

    #[test]
    fn exhaustive_depth_two_is_clean() {
        let report = exhaustive(2);
        assert_eq!(report.sequences, (ALPHABET as u64).pow(2));
        assert!(
            report.divergences.is_empty(),
            "divergences: {:?}",
            report.divergences
        );
        assert!(report.checks > report.sequences, "checks ran");
    }

    #[test]
    fn selftest_fires_all_three_rules() {
        for outcome in selftest() {
            assert!(
                outcome.fired,
                "{} must fire:\n{}",
                outcome.rule, outcome.report
            );
            assert!(
                outcome.report.contains("minimal choice sequence"),
                "report carries the shrunk trace:\n{}",
                outcome.report
            );
            assert!(
                outcome.report.contains(outcome.rule),
                "report names the rule:\n{}",
                outcome.report
            );
        }
    }

    #[test]
    fn random_sweep_is_clean() {
        assert!(random_sweep(40, 8).is_none());
    }
}
