//! The high-level memory-ownership model.
//!
//! [`SpecState`] is the executable isolation spec: a deliberately tiny
//! abstraction of machine memory — per-frame `owner`, the set of
//! declared sharing edges, and the privilege relation — in the style of
//! hvisor-pt's `mappings + permissions` state machine. The checker
//! ([`super::checker`]) advances it in lockstep with the real
//! hypervisor and asserts after every hypercall that the implementation
//! *refines* it: every concrete mapping, grant entry, CoW alias, and
//! clone fall-through must be justified by the model, and no frame may
//! become cross-domain read-visible without a declared edge.
//!
//! The model is also a query interface: tests express noninterference
//! claims (`can_see`, `sharing_justification`) against the spec rather
//! than against implementation internals.

use std::collections::{BTreeMap, BTreeSet};

use xoar_hypervisor::grant::GrantAccess;
use xoar_hypervisor::{DomId, Hypervisor};

/// A declared cross-region sharing edge, as recorded by the
/// hypervisor's ledger: `(kind, subject, object)` with kind one of
/// `"grant"`, `"event"`, `"foreign"`, `"blanket"`.
pub type Edge = (&'static str, DomId, DomId);

/// Above this many owned frames (summed over live domains) the checker
/// stops maintaining the exact per-frame owner map and falls back to
/// per-domain frame counts. The small-scope driver stays far below it;
/// full platforms get the scaled check.
pub const EXACT_OWNER_LIMIT: u64 = 16_384;

/// One grant fact: the granter's table says `grantee` may reach the
/// page at (`pfn` → `mfn`) with `access`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrantFact {
    /// Domain allowed to map the page.
    pub grantee: DomId,
    /// Granter-local frame number.
    pub pfn: u64,
    /// Machine frame the grant resolved to at grant time.
    pub mfn: u64,
    /// Permitted access mode.
    pub access: GrantAccess,
}

impl GrantFact {
    /// Whether `other` re-states this fact (same grantee, page, and
    /// access). Machine frames are ignored: a CoW break may have moved
    /// the page between revocation and an attempted resurrection.
    pub fn same_capability(&self, other: &GrantFact) -> bool {
        self.grantee == other.grantee && self.pfn == other.pfn && self.access == other.access
    }
}

/// The abstract machine-memory state the hypervisor must refine.
#[derive(Debug, Clone, Default)]
pub struct SpecState {
    /// Live (non-dead) domains the model tracks.
    pub live: BTreeSet<DomId>,
    /// Exact frame ownership, `mfn → owner`. Maintained only while
    /// `owner_exact` holds (small scopes); empty otherwise.
    pub owner: BTreeMap<u64, DomId>,
    /// Whether [`SpecState::owner`] is being maintained exactly.
    pub owner_exact: bool,
    /// Per-domain mapped-frame counts (the scaled ownership view).
    pub owned: BTreeMap<DomId, u64>,
    /// Live grant facts, keyed by `(granter, gref)`.
    pub grants: BTreeMap<(DomId, u32), GrantFact>,
    /// Facts revoked by `GnttabEndAccess` and never legitimately
    /// re-granted, kept as `(granter, fact)`. A real table entry that
    /// matches one of these without a model-side grant is diagnosed as
    /// a resurrected revocation (grant refs are monotonic, so the match
    /// is on the capability, not the ref).
    pub revoked: Vec<(DomId, GrantFact)>,
    /// Declared sharing edges (the model's copy of the ledger).
    pub declared: BTreeSet<Edge>,
    /// Domains holding blanket `map_foreign_any`.
    pub blanket: BTreeSet<DomId>,
    /// `(subject, object)` pairs of the `privileged_for` relation.
    pub priv_for: BTreeSet<(DomId, DomId)>,
    /// `clone → template` links the model has observed (via
    /// `DomctlCloneDomain` or attach-time capture). A fall-through
    /// alias between a clone and a template is justified only by an
    /// edge recorded *here* — a clone space wired up behind the model's
    /// back is a divergence.
    pub clone_of: BTreeMap<DomId, DomId>,
}

impl SpecState {
    /// Captures the abstraction of a running hypervisor.
    ///
    /// Attach-time capture trusts the current state (the spec cannot
    /// retroactively justify history); from then on the checker only
    /// accepts changes its advance rules permit.
    pub fn capture(hv: &Hypervisor) -> SpecState {
        let mut s = SpecState::default();
        let mut total_owned = 0u64;
        for id in hv.domain_ids() {
            let Ok(d) = hv.domain(id) else { continue };
            if d.state == xoar_hypervisor::DomainState::Dead {
                continue;
            }
            s.live.insert(id);
            total_owned += hv.mem.owned_frames(id);
            if let Some(tpl) = hv.mem.template_of(id) {
                s.clone_of.insert(id, tpl);
            }
        }
        s.owner_exact = total_owned <= EXACT_OWNER_LIMIT;
        s.sync_owner_views(hv);
        s.sync_privileges(hv);
        s.declared = hv.declared_ops().into_iter().collect();
        for &granter in &s.live {
            let Some(table) = hv.grant_table(granter) else {
                continue;
            };
            for (gref, e) in table.entries_sorted() {
                s.grants.insert(
                    (granter, gref.0),
                    GrantFact {
                        grantee: e.grantee,
                        pfn: e.pfn.0,
                        mfn: e.mfn.0,
                        access: e.access,
                    },
                );
            }
        }
        s
    }

    /// Rebuilds the ownership views (exact map and per-domain counts)
    /// from the real state. Used at capture and after the checker has
    /// verified an ownership delta is justified.
    pub(crate) fn sync_owner_views(&mut self, hv: &Hypervisor) {
        self.owned = self
            .live
            .iter()
            .map(|&d| (d, hv.mem.owned_frames(d)))
            .collect();
        self.owner.clear();
        if !self.owner_exact {
            return;
        }
        for &d in &self.live {
            for (_, mfn) in hv.mem.p2m_entries(d) {
                if let Ok(o) = hv.mem.owner(mfn) {
                    self.owner.insert(mfn.0, o);
                }
            }
        }
    }

    /// Refreshes the privilege relation (blanket / privileged-for) from
    /// live domains. These are *inputs* to justification; drift in the
    /// visible sharing they imply is audited through the declared-edge
    /// ledger, which derives `"blanket"`/`"foreign"` edges from them.
    pub(crate) fn sync_privileges(&mut self, hv: &Hypervisor) {
        self.blanket.clear();
        self.priv_for.clear();
        for &id in &self.live {
            let Ok(d) = hv.domain(id) else { continue };
            if d.privileges.map_foreign_any {
                self.blanket.insert(id);
            }
            for &obj in &d.privileged_for {
                self.priv_for.insert((id, obj));
            }
        }
    }

    /// Whether the model links `a` and `b` through snapshot-fork
    /// cloning: one is a clone of the other, or both are clones of the
    /// same template. Such pairs legitimately read-share the template
    /// body copy-on-write.
    pub fn clone_linked(&self, a: DomId, b: DomId) -> bool {
        self.clone_of.get(&a) == Some(&b)
            || self.clone_of.get(&b) == Some(&a)
            || matches!(
                (self.clone_of.get(&a), self.clone_of.get(&b)),
                (Some(x), Some(y)) if x == y
            )
    }

    /// Whether a sharing edge between `a` and `b` is declared: a grant,
    /// event, or foreign edge naming both (either orientation), or a
    /// blanket privilege on either side.
    pub fn declares_sharing(&self, a: DomId, b: DomId) -> bool {
        if self.blanket.contains(&a) || self.blanket.contains(&b) {
            return true;
        }
        self.declared
            .iter()
            .any(|&(_, s, o)| (s == a && o == b) || (s == b && o == a))
    }

    /// Model-level read-visibility: can `a` observe `b`'s memory?
    ///
    /// True only along the three enforced paths (blanket mapping,
    /// `privileged_for`, a grant from `b` to `a`) or a clone/template
    /// link. This is the query satellite noninterference tests assert
    /// against in place of hand-rolled implementation probes.
    pub fn can_see(&self, a: DomId, b: DomId) -> bool {
        if a == b {
            return true;
        }
        if self.blanket.contains(&a) || self.priv_for.contains(&(a, b)) {
            return true;
        }
        if self.clone_linked(a, b) {
            return true;
        }
        self.grants
            .iter()
            .any(|(&(granter, _), f)| granter == b && f.grantee == a)
    }

    /// Why (if at all) the model justifies `a` and `b` sharing memory:
    /// `"blanket"`, `"privileged-for"`, `"grant"`, `"clone-template"`,
    /// or `None`.
    pub fn sharing_justification(&self, a: DomId, b: DomId) -> Option<&'static str> {
        if self.blanket.contains(&a) || self.blanket.contains(&b) {
            return Some("blanket");
        }
        if self.priv_for.contains(&(a, b)) || self.priv_for.contains(&(b, a)) {
            return Some("privileged-for");
        }
        if self.clone_linked(a, b) {
            return Some("clone-template");
        }
        let granted = self.grants.iter().any(|(&(granter, _), f)| {
            (granter == b && f.grantee == a) || (granter == a && f.grantee == b)
        });
        if granted {
            return Some("grant");
        }
        None
    }

    /// Grant facts exported by `granter`, in ref order.
    pub fn grants_by(&self, granter: DomId) -> Vec<(u32, GrantFact)> {
        self.grants
            .range((granter, 0)..=(granter, u32::MAX))
            .map(|(&(_, gref), &f)| (gref, f))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(n: u32) -> DomId {
        DomId(n)
    }

    fn base() -> SpecState {
        let mut s = SpecState::default();
        s.live.extend([d(0), d(1), d(2)]);
        s
    }

    #[test]
    fn clone_links_cover_siblings_and_parents() {
        let mut s = base();
        s.clone_of.insert(d(1), d(0));
        s.clone_of.insert(d(2), d(0));
        assert!(s.clone_linked(d(1), d(0)));
        assert!(s.clone_linked(d(0), d(2)));
        assert!(s.clone_linked(d(1), d(2)), "siblings share a template");
        assert!(!s.clone_linked(d(1), d(3)));
    }

    #[test]
    fn can_see_is_directional_for_grants() {
        let mut s = base();
        s.grants.insert(
            (d(1), 0),
            GrantFact {
                grantee: d(2),
                pfn: 4,
                mfn: 40,
                access: GrantAccess::ReadWrite,
            },
        );
        assert!(s.can_see(d(2), d(1)), "grantee sees granter's page");
        assert!(!s.can_see(d(1), d(2)), "granter gains nothing back");
        assert_eq!(s.sharing_justification(d(1), d(2)), Some("grant"));
        assert_eq!(s.sharing_justification(d(0), d(2)), None);
    }

    #[test]
    fn blanket_and_priv_for_dominate() {
        let mut s = base();
        s.blanket.insert(d(0));
        s.priv_for.insert((d(1), d(2)));
        assert!(s.can_see(d(0), d(2)));
        assert!(s.can_see(d(1), d(2)));
        assert!(!s.can_see(d(2), d(1)));
        assert_eq!(s.sharing_justification(d(1), d(2)), Some("privileged-for"));
    }

    #[test]
    fn same_capability_ignores_machine_frame() {
        let a = GrantFact {
            grantee: d(2),
            pfn: 4,
            mfn: 40,
            access: GrantAccess::ReadOnly,
        };
        let b = GrantFact { mfn: 99, ..a };
        assert!(a.same_capability(&b));
        let c = GrantFact {
            access: GrantAccess::ReadWrite,
            ..a
        };
        assert!(!a.same_capability(&c));
    }
}
