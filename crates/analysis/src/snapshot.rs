//! Freezing a running platform into an analysable model.
//!
//! [`ModelSnapshot::capture`] walks a [`Platform`] and records everything
//! the privilege-flow rules need: per-domain privilege sets and flags,
//! the live grant-table entries, the event-channel topology, and the
//! XenStore privileged-connection list. The snapshot is a plain value —
//! tests hand-build snapshots directly to exercise the rules on
//! known-good and deliberately broken configurations without booting a
//! platform.

use std::collections::{BTreeMap, BTreeSet};

use xoar_core::platform::Platform;
use xoar_hypervisor::domain::{DomainRole, DomainState};
use xoar_hypervisor::grant::GrantAccess;
use xoar_hypervisor::{DomId, PrivilegeSet};

/// Everything the rules need to know about one domain.
#[derive(Debug, Clone)]
pub struct DomainInfo {
    /// The domain's ID.
    pub id: DomId,
    /// Name as registered with the hypervisor.
    pub name: String,
    /// Shard-class label (see [`ModelSnapshot::capture`]), `"guest"`, or
    /// `"unknown"` for hand-built fixtures that don't set one.
    pub kind: String,
    /// Lifecycle state at capture time.
    pub state: DomainState,
    /// Role metadata.
    pub role: DomainRole,
    /// The full privilege assignment.
    pub privileges: PrivilegeSet,
    /// Parent toolstack recorded at creation.
    pub parent_toolstack: Option<DomId>,
    /// Shards this domain has been delegated to use.
    pub delegated_shards: BTreeSet<DomId>,
    /// Domains whose memory this domain may map (QEMU stub flag, §5.6).
    pub privileged_for: BTreeSet<DomId>,
    /// Constraint-group tag (§3.2.1).
    pub constraint_group: Option<String>,
}

impl DomainInfo {
    /// A minimal record for hand-built test fixtures.
    pub fn fixture(id: DomId, kind: &str, role: DomainRole) -> Self {
        DomainInfo {
            id,
            name: format!("{kind}-{}", id.0),
            kind: kind.to_string(),
            state: DomainState::Running,
            role,
            privileges: PrivilegeSet::default(),
            parent_toolstack: None,
            delegated_shards: BTreeSet::new(),
            privileged_for: BTreeSet::new(),
            constraint_group: None,
        }
    }

    /// Whether the domain was alive at capture time.
    pub fn is_live(&self) -> bool {
        self.state != DomainState::Dead
    }
}

/// One live grant-table entry, flattened to an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct GrantEdge {
    /// Domain owning the granted frame.
    pub granter: DomId,
    /// Domain permitted to map it.
    pub grantee: DomId,
    /// The grant reference.
    pub gref: u32,
    /// Granter-local frame number.
    pub pfn: u64,
    /// Whether the grant permits writes.
    pub writable: bool,
}

/// One machine frame mapped by more than one domain at capture time.
///
/// Cross-domain frame aliasing has two benign hypervisor-managed forms
/// that the sharing rules must not misreport: content-dedup
/// copy-on-write (any write breaks the share, so it carries no
/// information between the mappers) and microreboot snapshot baselines
/// (a frozen shard's pre-image aliases live frames until the first
/// write). The capture records both properties so the
/// `undeclared-sharing` rule fires only on *raw* aliasing — two domains
/// genuinely reading each other's writes without a grant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SharedFrame {
    /// The shared machine frame.
    pub mfn: u64,
    /// The distinct mapper domains, ascending.
    pub mappers: Vec<DomId>,
    /// Hypervisor-managed copy-on-write sharing (content dedup).
    pub cow: bool,
    /// At least one mapper holds a frozen microreboot snapshot, whose
    /// CoW baseline legitimately aliases that domain's frames.
    pub frozen: bool,
}

/// The frozen model.
#[derive(Debug, Clone, Default)]
pub struct ModelSnapshot {
    /// All domains the hypervisor still tracks, keyed by ID.
    pub domains: BTreeMap<DomId, DomainInfo>,
    /// Live grant entries, sorted by `(granter, gref)`.
    pub grants: Vec<GrantEdge>,
    /// Connected interdomain event channels as ordered pairs with
    /// `pair.0 < pair.1` (channels are bidirectional), sorted + deduped.
    pub channels: Vec<(DomId, DomId)>,
    /// Domains holding privileged (ACL-bypassing) XenStore connections,
    /// ascending.
    pub xenstore_privileged: Vec<DomId>,
    /// Frames mapped by more than one domain, sorted by MFN, with their
    /// CoW/frozen provenance.
    pub shared_frames: Vec<SharedFrame>,
    /// Cross-region operations the hypervisor has declared, as
    /// `(kind, subject, object)` — the ledger the sharded core appends
    /// to whenever a typed `CrossRegionOp` names two regions. `"event"`
    /// edges are normalised with subject ≤ object; `"blanket"` uses
    /// `DomId(u32::MAX)` as its object (any domain). Every edge in the
    /// reachability matrix must be covered by one of these.
    pub declared: BTreeSet<(String, DomId, DomId)>,
}

impl ModelSnapshot {
    /// An empty snapshot for hand-built fixtures.
    pub fn fixture() -> Self {
        Self::default()
    }

    /// Adds a domain to a fixture snapshot, declaring the cross-region
    /// access its privilege flags imply (mirroring what the live
    /// hypervisor derives for blanket and stub-domain access).
    pub fn with_domain(mut self, info: DomainInfo) -> Self {
        if info.privileges.map_foreign_any {
            self.declared
                .insert(("blanket".to_string(), info.id, DomId(u32::MAX)));
        }
        for &owner in &info.privileged_for {
            self.declared
                .insert(("foreign".to_string(), info.id, owner));
        }
        self.domains.insert(info.id, info);
        self
    }

    /// Adds a grant edge to a fixture snapshot, declaring it (a live
    /// grant can only arise from a declared `CrossRegionOp`).
    pub fn with_grant(mut self, edge: GrantEdge) -> Self {
        self.declared
            .insert(("grant".to_string(), edge.grantee, edge.granter));
        self.grants.push(edge);
        self.grants.sort();
        self
    }

    /// Declares a cross-region operation kind on a fixture snapshot.
    pub fn with_declared(mut self, kind: &str, subject: DomId, object: DomId) -> Self {
        self.declared.insert((kind.to_string(), subject, object));
        self
    }

    /// Adds a shared frame to a fixture snapshot.
    pub fn with_shared_frame(mut self, frame: SharedFrame) -> Self {
        self.shared_frames.push(frame);
        self.shared_frames.sort();
        self
    }

    /// Captures a running platform.
    ///
    /// Takes the platform mutably: memory content hashes are maintained
    /// lazily (dirty-epoch hashing), so the capture first materializes
    /// any pending rehashes — the snapshot must describe a fully
    /// integrity-checkable memory state, never a half-hashed one.
    pub fn capture(p: &mut Platform) -> Self {
        p.hv.mem.materialize_hashes();
        let mut domains = BTreeMap::new();
        for id in p.hv.domain_ids() {
            let Ok(d) = p.hv.domain(id) else { continue };
            domains.insert(
                id,
                DomainInfo {
                    id,
                    name: d.name.clone(),
                    kind: Self::kind_label(p, id, d.role),
                    state: d.state,
                    role: d.role,
                    privileges: d.privileges.clone(),
                    parent_toolstack: d.parent_toolstack,
                    delegated_shards: d.delegated_shards.clone(),
                    privileged_for: d.privileged_for.clone(),
                    constraint_group: d.constraint_group.clone(),
                },
            );
        }
        let mut grants = Vec::new();
        for (&granter, _) in domains.iter() {
            if let Some(table) = p.hv.grant_table(granter) {
                for (gref, entry) in table.entries_sorted() {
                    grants.push(GrantEdge {
                        granter,
                        grantee: entry.grantee,
                        gref: gref.0,
                        pfn: entry.pfn.0,
                        writable: entry.access == GrantAccess::ReadWrite,
                    });
                }
            }
        }
        grants.sort();
        let mut channels: Vec<(DomId, DomId)> = Vec::new();
        for &a in domains.keys() {
            for b in p.hv.peers_of(a) {
                channels.push(if a < b { (a, b) } else { (b, a) });
            }
        }
        channels.sort();
        channels.dedup();
        // Cross-domain frame aliasing in the live memory manager only
        // arises from the hypervisor's own CoW machinery (content dedup
        // and snapshot baselines) — grant maps pin frames rather than
        // alias p2m entries — so every captured share is CoW. The
        // `frozen` bit additionally records whether a mapper holds a
        // live microreboot snapshot. Hand-built fixtures can assert raw
        // (non-CoW) shares to exercise the rule.
        let shared_frames =
            p.hv.mem
                .multi_domain_frames()
                .into_iter()
                .map(|(mfn, mappers)| SharedFrame {
                    mfn: mfn.0,
                    frozen: mappers.iter().any(|&d| p.hv.mem.is_frozen(d)),
                    mappers,
                    cow: true,
                })
                .collect();
        let declared =
            p.hv.declared_ops()
                .into_iter()
                .map(|(kind, subject, object)| (kind.to_string(), subject, object))
                .collect();
        ModelSnapshot {
            domains,
            grants,
            channels,
            xenstore_privileged: p.xs.logic().privileged_domains(),
            shared_frames,
            declared,
        }
    }

    /// The shard-class label for a domain, derived from the platform's
    /// service-identity table rather than the free-form domain name.
    fn kind_label(p: &Platform, id: DomId, role: DomainRole) -> String {
        let s = &p.services;
        let label = if id == s.xenstore {
            "xenstore-logic"
        } else if id == s.xenstore_state {
            "xenstore-state"
        } else if Some(id) == s.console {
            "console"
        } else if id == s.builder {
            "builder"
        } else if Some(id) == s.pciback {
            "pciback"
        } else if p.fabric.as_ref().is_some_and(|f| f.dom == id) {
            // The NetBack hosting the virtual network fabric: same
            // privilege envelope as any backend (grant-only reach), but
            // labeled distinctly so the rules audit the switching plane
            // by name.
            "fabric"
        } else if s.netbacks.contains(&id) {
            "netback"
        } else if s.blkbacks.contains(&id) {
            "blkback"
        } else if s.toolstacks.contains(&id) {
            "toolstack"
        } else if p.guest(id).is_some() {
            "guest"
        } else if p.guests().iter().any(|g| g.qemu == Some(id)) {
            "qemu"
        } else if role == DomainRole::ControlVm {
            // In Xoar mode the only ControlVm not in the service table is
            // the self-destructed Bootstrapper; in stock mode every
            // service ID matched above.
            "bootstrapper"
        } else if role == DomainRole::Shard {
            // A shard no longer referenced by the service table (e.g. a
            // destroyed PCIBack, or a stub whose guest died first).
            "retired-shard"
        } else {
            "unknown"
        };
        label.to_string()
    }

    /// Live domains only, in ID order.
    pub fn live_domains(&self) -> impl Iterator<Item = &DomainInfo> {
        self.domains.values().filter(|d| d.is_live())
    }

    /// A deterministic one-line-per-domain rendering (report header).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in self.domains.values() {
            out.push_str(&format!(
                "{} {} kind={} state={:?} hypercalls={} blanket={} priv_for={} delegated={}\n",
                d.id,
                d.name,
                d.kind,
                d.state,
                d.privileges.hypercalls.len(),
                d.privileges.map_foreign_any,
                d.privileged_for.len(),
                d.delegated_shards.len(),
            ));
        }
        out.push_str(&format!(
            "grants={} channels={} declared_ops={} xenstore_privileged={:?} shared_frames={} (cow={} frozen={})\n",
            self.grants.len(),
            self.channels.len(),
            self.declared.len(),
            self.xenstore_privileged
                .iter()
                .map(|d| d.0)
                .collect::<Vec<_>>(),
            self.shared_frames.len(),
            self.shared_frames.iter().filter(|f| f.cow).count(),
            self.shared_frames.iter().filter(|f| f.frozen).count(),
        ));
        out
    }
}
