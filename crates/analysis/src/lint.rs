//! Token-level source linter for the workspace's layering rules.
//!
//! Zero dependencies and no rustc: a comment/string-aware stripper turns
//! each source file into a token-safe skeleton, and four rules scan it:
//!
//! * **`no-panic`** — non-test code in `crates/hypervisor/src` must not
//!   call `.unwrap()` / `.expect(…)` or expand `panic!` /
//!   `unreachable!` / `todo!` / `unimplemented!`. The hypervisor is the
//!   trusted computing base; it returns typed [`xoar_hypervisor::HvError`]s.
//! * **`boundary`** — `crates/devices/src` and `crates/core/src` may
//!   name `memory::` / `grant::` items only for the plain data types
//!   (frame numbers, page handles, grant refs), and may touch the
//!   hypervisor's `mem` field only through the read-side helpers;
//!   everything that *mutates* memory or grant state must go through
//!   the hypercall layer where access control lives.
//! * **`region-isolation`** — the split-borrow primitives that hold two
//!   domains' state regions at once (`region_pair_mut`,
//!   `object_region_mut`) may be invoked only from the typed
//!   `CrossRegionOp` module (`xregion.rs`), and the per-domain `regions`
//!   map may be poked only there and in `hypervisor.rs` (which owns the
//!   field); everyone else reaches another domain's region through a
//!   hypercall or a `Hypervisor` facade method.
//! * **`dispatch-exhaustive`** — the `HypercallId` bookkeeping tables
//!   (`ALL`, the JSON codec, `name()`, the privileged/unprivileged
//!   partition) and the `Hypercall` dispatcher in `hypervisor.rs` must
//!   cover every enum variant; adding a call without updating a table
//!   fails the lint rather than silently weakening the model.
//!
//! Findings a rule cannot avoid (e.g. the documented panics of the
//! `HypercallRet` extractors) are suppressed by the committed allowlist
//! `crates/analysis/lint.allow`.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LintFinding {
    /// Repo-relative path (`/`-separated).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule ID.
    pub rule: &'static str,
    /// The offending source line, trimmed.
    pub excerpt: String,
    /// What is wrong.
    pub msg: String,
}

impl LintFinding {
    /// One-line rendering.
    pub fn render(&self) -> String {
        format!(
            "LINT {}:{} [{}] {} | {}",
            self.file, self.line, self.rule, self.msg, self.excerpt
        )
    }
}

/// A source file handed to the linter (in-memory; tests build these
/// directly, the binary loads them from disk).
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Repo-relative path.
    pub path: String,
    /// Full file content.
    pub content: String,
}

// ---------------------------------------------------------------------
// Stripper: blank out comments and literal contents, preserving layout.
// ---------------------------------------------------------------------

/// Replaces comments and string/char-literal contents with spaces,
/// keeping every other byte (including newlines and quote delimiters) at
/// its original offset, so token scans cannot match inside prose and
/// line numbers stay true.
pub fn strip_code(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let mut out: Vec<char> = Vec::with_capacity(b.len());
    let n = b.len();
    let mut i = 0;
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };
    while i < n {
        let c = b[i];
        // Line comment.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            while i < n && b[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 1;
            out.push(' ');
            out.push(' ');
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Raw string r"…" / r#"…"# (also br…).
        if (c == 'r' || c == 'b') && {
            let mut j = i;
            if b[j] == 'b' && j + 1 < n && b[j + 1] == 'r' {
                j += 1;
            }
            let mut k = j + 1;
            while k < n && b[k] == '#' {
                k += 1;
            }
            k < n && b[k] == '"' && (b[j] == 'r')
        } {
            // Re-derive the bounds (the guard above only peeked).
            let mut j = i;
            out.push(b[j]);
            if b[j] == 'b' {
                j += 1;
                out.push(b[j]);
            }
            let mut hashes = 0;
            let mut k = j + 1;
            while k < n && b[k] == '#' {
                hashes += 1;
                out.push('#');
                k += 1;
            }
            out.push('"');
            k += 1;
            // Scan to closing quote followed by `hashes` hashes.
            while k < n {
                if b[k] == '"' {
                    let mut h = 0;
                    while k + 1 + h < n && h < hashes && b[k + 1 + h] == '#' {
                        h += 1;
                    }
                    if h == hashes {
                        out.push('"');
                        for _ in 0..hashes {
                            out.push('#');
                        }
                        k += 1 + hashes;
                        break;
                    }
                }
                out.push(blank(b[k]));
                k += 1;
            }
            i = k;
            continue;
        }
        // Ordinary string (also b"…").
        if c == '"' {
            out.push('"');
            i += 1;
            while i < n {
                if b[i] == '\\' && i + 1 < n {
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                if b[i] == '"' {
                    out.push('"');
                    i += 1;
                    break;
                }
                out.push(blank(b[i]));
                i += 1;
            }
            continue;
        }
        // Char literal vs lifetime: only treat as a literal when it
        // closes ('x' or '\…').
        if c == '\'' && i + 1 < n {
            let is_char = b[i + 1] == '\\' || (i + 2 < n && b[i + 2] == '\'' && b[i + 1] != '\'');
            if is_char {
                out.push('\'');
                i += 1;
                while i < n {
                    if b[i] == '\\' && i + 1 < n {
                        out.push(' ');
                        out.push(' ');
                        i += 2;
                        continue;
                    }
                    if b[i] == '\'' {
                        out.push('\'');
                        i += 1;
                        break;
                    }
                    out.push(blank(b[i]));
                    i += 1;
                }
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    out.into_iter().collect()
}

/// Byte spans (over the stripped text) of `#[cfg(test)]`-gated items,
/// found by brace-matching from the attribute to the item's close.
fn test_spans(stripped: &str) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let needle = "#[cfg(test)]";
    let bytes = stripped.as_bytes();
    let mut from = 0;
    while let Some(pos) = stripped[from..].find(needle) {
        let start = from + pos;
        // Find the opening brace of the gated item.
        let mut i = start + needle.len();
        while i < bytes.len() && bytes[i] != b'{' {
            i += 1;
        }
        let mut depth = 0usize;
        let mut end = stripped.len();
        while i < bytes.len() {
            match bytes[i] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = i + 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        spans.push((start, end));
        from = end.max(start + needle.len());
    }
    spans
}

fn in_spans(spans: &[(usize, usize)], offset: usize) -> bool {
    spans.iter().any(|&(s, e)| offset >= s && offset < e)
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Iterates `(byte_offset, ident)` over the stripped text.
fn idents(stripped: &str) -> Vec<(usize, &str)> {
    let bytes = stripped.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if is_ident_char(bytes[i]) {
            let start = i;
            while i < bytes.len() && is_ident_char(bytes[i]) {
                i += 1;
            }
            out.push((start, &stripped[start..i]));
        } else {
            i += 1;
        }
    }
    out
}

/// Whether `ident` occurs as a whole token in `text`.
fn contains_token(text: &str, ident: &str) -> bool {
    let bytes = text.as_bytes();
    let mut from = 0;
    while let Some(pos) = text[from..].find(ident) {
        let s = from + pos;
        let e = s + ident.len();
        let before_ok = s == 0 || !is_ident_char(bytes[s - 1]);
        let after_ok = e >= bytes.len() || !is_ident_char(bytes[e]);
        if before_ok && after_ok {
            return true;
        }
        from = s + 1;
    }
    false
}

fn line_of(src: &str, offset: usize) -> usize {
    src.as_bytes()[..offset.min(src.len())]
        .iter()
        .filter(|&&c| c == b'\n')
        .count()
        + 1
}

fn excerpt_at(src: &str, offset: usize) -> String {
    let line = line_of(src, offset);
    src.lines().nth(line - 1).unwrap_or("").trim().to_string()
}

fn next_nonspace(bytes: &[u8], mut i: usize) -> Option<u8> {
    while i < bytes.len() {
        if !bytes[i].is_ascii_whitespace() {
            return Some(bytes[i]);
        }
        i += 1;
    }
    None
}

// ---------------------------------------------------------------------
// Rule: no-panic (hypervisor crate only).
// ---------------------------------------------------------------------

const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

fn rule_no_panic(file: &SourceFile, stripped: &str, out: &mut Vec<LintFinding>) {
    if !file.path.starts_with("crates/hypervisor/src/") {
        return;
    }
    let spans = test_spans(stripped);
    let bytes = stripped.as_bytes();
    for (off, ident) in idents(stripped) {
        if in_spans(&spans, off) {
            continue;
        }
        let after = next_nonspace(bytes, off + ident.len());
        let preceded_by_dot = off > 0 && bytes[off - 1] == b'.';
        let hit = (PANIC_METHODS.contains(&ident) && preceded_by_dot && after == Some(b'('))
            || (PANIC_MACROS.contains(&ident) && after == Some(b'!'));
        if hit {
            out.push(LintFinding {
                file: file.path.clone(),
                line: line_of(stripped, off),
                rule: "no-panic",
                excerpt: excerpt_at(&file.content, off),
                msg: format!("`{ident}` in non-test hypervisor code; return an HvError"),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Rule: boundary (devices and core crates).
// ---------------------------------------------------------------------

/// Plain data types devices/core may name from the memory/grant modules.
const BOUNDARY_TYPE_ALLOW: [&str; 9] = [
    "Pfn",
    "Mfn",
    "PageRef",
    "PAGE_SIZE",
    "MemError",
    "MemoryError",
    "GrantRef",
    "GrantAccess",
    "GrantError",
];

/// Read-side `hv.mem` helpers that do not bypass access control (they
/// operate on caller-visible state; every mutation of ownership or
/// mappings must travel through `Hypervisor::hypercall`).
const MEM_METHOD_ALLOW: [&str; 5] = [
    "read",
    "write",
    "take_dirty",
    "p2m_entries",
    "share_identical",
];

fn rule_boundary(file: &SourceFile, stripped: &str, out: &mut Vec<LintFinding>) {
    if !(file.path.starts_with("crates/devices/src/") || file.path.starts_with("crates/core/src/"))
    {
        return;
    }
    let spans = test_spans(stripped);
    let bytes = stripped.as_bytes();
    let toks = idents(stripped);
    for (k, &(off, ident)) in toks.iter().enumerate() {
        if in_spans(&spans, off) {
            continue;
        }
        // `memory::X` / `grant::X` module paths: X must be a data type.
        if (ident == "memory" || ident == "grant")
            && bytes.get(off + ident.len()) == Some(&b':')
            && bytes.get(off + ident.len() + 1) == Some(&b':')
        {
            if let Some(&(_, next)) = toks.get(k + 1) {
                if !BOUNDARY_TYPE_ALLOW.contains(&next) {
                    out.push(LintFinding {
                        file: file.path.clone(),
                        line: line_of(stripped, off),
                        rule: "boundary",
                        excerpt: excerpt_at(&file.content, off),
                        msg: format!(
                            "`{ident}::{next}` reaches hypervisor internals; use the \
                             hypercall layer (allowed types: data handles only)"
                        ),
                    });
                }
            }
        }
        // `.mem.<method>` field pokes: read-side helpers only.
        if ident == "mem" && off > 0 && bytes[off - 1] == b'.' {
            if let Some(&(moff, method)) = toks.get(k + 1) {
                let direct_follow = bytes.get(off + ident.len()) == Some(&b'.');
                if direct_follow && !MEM_METHOD_ALLOW.contains(&method) {
                    out.push(LintFinding {
                        file: file.path.clone(),
                        line: line_of(stripped, moff),
                        rule: "boundary",
                        excerpt: excerpt_at(&file.content, off),
                        msg: format!(
                            "`.mem.{method}` mutates memory state outside the hypercall \
                             layer"
                        ),
                    });
                }
            }
        }
        // `.grants` is a hypervisor-private table; no direct access.
        if ident == "grants" && off > 0 && bytes[off - 1] == b'.' {
            out.push(LintFinding {
                file: file.path.clone(),
                line: line_of(stripped, off),
                rule: "boundary",
                excerpt: excerpt_at(&file.content, off),
                msg: "direct grant-table access; use Hypervisor::grant_table or a hypercall"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Rule: region-isolation (per-domain state regions stay behind the
// typed cross-region module).
// ---------------------------------------------------------------------

/// The split-borrow primitives that hold two domains' state regions at
/// once. Only the `CrossRegionOp` module may invoke them — every other
/// caller must name a typed cross-region operation instead.
const REGION_PAIR_PRIMITIVES: [&str; 2] = ["region_pair_mut", "object_region_mut"];

fn rule_region(file: &SourceFile, stripped: &str, out: &mut Vec<LintFinding>) {
    let is_xregion = file.path == "crates/hypervisor/src/xregion.rs";
    // `hypervisor.rs` owns the `regions` field and hands it to xregion;
    // everyone else goes through hypercalls or the facade methods.
    let owns_map = is_xregion || file.path == "crates/hypervisor/src/hypervisor.rs";
    if is_xregion {
        return;
    }
    let spans = test_spans(stripped);
    let bytes = stripped.as_bytes();
    for &(off, ident) in &idents(stripped) {
        if in_spans(&spans, off) {
            continue;
        }
        if REGION_PAIR_PRIMITIVES.contains(&ident) {
            out.push(LintFinding {
                file: file.path.clone(),
                line: line_of(stripped, off),
                rule: "region-isolation",
                excerpt: excerpt_at(&file.content, off),
                msg: format!(
                    "`{ident}` borrows two domains' state regions at once; only the \
                     CrossRegionOp module (xregion.rs) may do that"
                ),
            });
        }
        if ident == "regions" && off > 0 && bytes[off - 1] == b'.' && !owns_map {
            out.push(LintFinding {
                file: file.path.clone(),
                line: line_of(stripped, off),
                rule: "region-isolation",
                excerpt: excerpt_at(&file.content, off),
                msg: "direct access to the per-domain region map; use a hypercall or a \
                      Hypervisor facade method"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Rule: dispatch-exhaustive (cross-file, hypercall.rs + hypervisor.rs).
// ---------------------------------------------------------------------

/// The delimited region opened by the first `open` after `marker`.
fn region_after(text: &str, marker: &str, open: u8, close: u8) -> Option<(usize, usize)> {
    let start = text.find(marker)?;
    let bytes = text.as_bytes();
    let mut i = start + marker.len();
    while i < bytes.len() && bytes[i] != open {
        i += 1;
    }
    let body_start = i;
    let mut depth = 0usize;
    while i < bytes.len() {
        if bytes[i] == open {
            depth += 1;
        } else if bytes[i] == close {
            depth -= 1;
            if depth == 0 {
                return Some((body_start, i + 1));
            }
        }
        i += 1;
    }
    None
}

/// Variant names of an enum: idents at brace depth 1 of its body.
fn enum_variants<'a>(stripped: &'a str, enum_marker: &str) -> Vec<(usize, &'a str)> {
    let Some((s, e)) = region_after(stripped, enum_marker, b'{', b'}') else {
        return Vec::new();
    };
    let body = &stripped[s..e];
    let bytes = body.as_bytes();
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'{' | b'(' | b'<' => {
                depth += 1;
                i += 1;
            }
            b'}' | b')' | b'>' => {
                depth = depth.saturating_sub(1);
                i += 1;
            }
            c if is_ident_char(c) => {
                let start = i;
                while i < bytes.len() && is_ident_char(bytes[i]) {
                    i += 1;
                }
                if depth == 1 {
                    out.push((s + start, &body[start..i]));
                }
            }
            _ => i += 1,
        }
    }
    out
}

fn dispatch_finding(file: &str, line: usize, excerpt: &str, msg: String) -> LintFinding {
    LintFinding {
        file: file.to_string(),
        line,
        rule: "dispatch-exhaustive",
        excerpt: excerpt.to_string(),
        msg,
    }
}

fn rule_dispatch(files: &[SourceFile], out: &mut Vec<LintFinding>) {
    let find = |suffix: &str| files.iter().find(|f| f.path.ends_with(suffix));
    let Some(hc) = find("crates/hypervisor/src/hypercall.rs") else {
        return;
    };
    let stripped = strip_code(&hc.content);

    // HypercallId variants vs the bookkeeping tables.
    let id_variants = enum_variants(&stripped, "enum HypercallId");
    // The ALL initializer sits after an `=` (the type annotation also
    // uses brackets, so bracket-match only from the initializer on).
    let all_region = stripped.find("ALL:").and_then(|p| {
        let eq = p + stripped[p..].find('=')?;
        region_after(&stripped[eq..], "=", b'[', b']').map(|(s, e)| (eq + s, eq + e))
    });
    let tables: [(&str, Option<(usize, usize)>); 3] = [
        ("ALL array", all_region),
        (
            "impl_json_enum table",
            region_after(&stripped, "impl_json_enum!(HypercallId", b'{', b'}'),
        ),
        (
            "name() match",
            region_after(&stripped, "fn name(", b'{', b'}'),
        ),
    ];
    for (what, region) in tables {
        let Some((s, e)) = region else {
            out.push(dispatch_finding(
                &hc.path,
                1,
                "",
                format!("could not locate the {what} for HypercallId"),
            ));
            continue;
        };
        let text = &stripped[s..e];
        for &(off, v) in &id_variants {
            if !contains_token(text, v) {
                out.push(dispatch_finding(
                    &hc.path,
                    line_of(&stripped, off),
                    &excerpt_at(&hc.content, off),
                    format!("HypercallId::{v} missing from the {what}"),
                ));
            }
        }
    }

    // Partition: each ID in exactly one of all_privileged/all_unprivileged.
    let priv_region = region_after(&stripped, "fn all_privileged", b'{', b'}');
    let unpriv_region = region_after(&stripped, "fn all_unprivileged", b'{', b'}');
    if let (Some((ps, pe)), Some((us, ue))) = (priv_region, unpriv_region) {
        let p = &stripped[ps..pe];
        let u = &stripped[us..ue];
        for &(off, v) in &id_variants {
            let in_p = contains_token(p, v);
            let in_u = contains_token(u, v);
            if in_p == in_u {
                out.push(dispatch_finding(
                    &hc.path,
                    line_of(&stripped, off),
                    &excerpt_at(&hc.content, off),
                    format!(
                        "HypercallId::{v} must appear in exactly one of \
                         all_privileged/all_unprivileged (found in {})",
                        if in_p { "both" } else { "neither" }
                    ),
                ));
            }
        }
    }

    // HYPERCALL_COUNT literal matches the variant count.
    if let Some(pos) = stripped.find("HYPERCALL_COUNT: usize =") {
        let tail = &stripped[pos + "HYPERCALL_COUNT: usize =".len()..];
        let digits: String = tail
            .chars()
            .skip_while(|c| c.is_whitespace())
            .take_while(|c| c.is_ascii_digit())
            .collect();
        if digits.parse::<usize>().ok() != Some(id_variants.len()) {
            out.push(dispatch_finding(
                &hc.path,
                line_of(&stripped, pos),
                &excerpt_at(&hc.content, pos),
                format!(
                    "HYPERCALL_COUNT = {digits} but the enum declares {} variants",
                    id_variants.len()
                ),
            ));
        }
    }

    // Hypercall payload variants vs the id() map and the dispatcher.
    let call_variants = enum_variants(&stripped, "enum Hypercall ");
    if let Some((s, e)) = region_after(&stripped, "fn id(", b'{', b'}') {
        let text = &stripped[s..e];
        for &(off, v) in &call_variants {
            if !contains_token(text, v) {
                out.push(dispatch_finding(
                    &hc.path,
                    line_of(&stripped, off),
                    &excerpt_at(&hc.content, off),
                    format!("Hypercall::{v} missing from Hypercall::id()"),
                ));
            }
        }
    }
    if let Some(hv) = find("crates/hypervisor/src/hypervisor.rs") {
        let hv_stripped = strip_code(&hv.content);
        for &(off, v) in &call_variants {
            if !contains_token(&hv_stripped, v) {
                out.push(dispatch_finding(
                    &hc.path,
                    line_of(&stripped, off),
                    &excerpt_at(&hc.content, off),
                    format!("Hypercall::{v} has no dispatch arm in hypervisor.rs"),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Driver + allowlist.
// ---------------------------------------------------------------------

/// Lints a set of in-memory sources; findings are sorted and deduped.
pub fn lint_sources(files: &[SourceFile]) -> Vec<LintFinding> {
    let mut out = Vec::new();
    for f in files {
        let stripped = strip_code(&f.content);
        rule_no_panic(f, &stripped, &mut out);
        rule_boundary(f, &stripped, &mut out);
        rule_region(f, &stripped, &mut out);
    }
    rule_dispatch(files, &mut out);
    out.sort();
    out.dedup();
    out
}

/// Loads every `crates/*/src/**/*.rs` file under `root`, sorted by path.
pub fn load_tree(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, root, &mut files)?;
        }
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, root, out)?;
        } else if p.extension().is_some_and(|x| x == "rs") {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile {
                path: rel,
                content: fs::read_to_string(&p)?,
            });
        }
    }
    Ok(())
}

/// The committed suppression list.
///
/// Format, one entry per line: `path|rule|needle` — a finding is
/// suppressed when its file equals `path`, its rule equals `rule`, and
/// its source excerpt contains `needle`. `#` starts a comment.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    entries: Vec<(String, String, String)>,
}

impl Allowlist {
    /// Parses the allowlist text.
    pub fn parse(text: &str) -> Self {
        let mut entries = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, '|');
            if let (Some(p), Some(r), Some(n)) = (parts.next(), parts.next(), parts.next()) {
                entries.push((p.trim().to_string(), r.trim().to_string(), n.to_string()));
            }
        }
        Allowlist { entries }
    }

    /// Whether a finding is suppressed.
    pub fn permits(&self, f: &LintFinding) -> bool {
        self.entries
            .iter()
            .any(|(p, r, n)| p == &f.file && r == f.rule && f.excerpt.contains(n))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries that suppress none of `findings`, rendered back in the
    /// committed `path|rule|needle` form. A stale entry is debt that
    /// outlived its finding: the lint treats it as a failure so the
    /// list can only shrink toward its default — empty.
    pub fn unused_entries(&self, findings: &[LintFinding]) -> Vec<String> {
        self.entries
            .iter()
            .filter(|(p, r, n)| {
                !findings
                    .iter()
                    .any(|f| p == &f.file && r == &f.rule && f.excerpt.contains(n.as_str()))
            })
            .map(|(p, r, n)| format!("{p}|{r}|{n}"))
            .collect()
    }
}

/// Splits findings into `(kept, suppressed)` under an allowlist.
pub fn apply_allowlist(
    findings: Vec<LintFinding>,
    allow: &Allowlist,
) -> (Vec<LintFinding>, Vec<LintFinding>) {
    findings.into_iter().partition(|f| !allow.permits(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, content: &str) -> SourceFile {
        SourceFile {
            path: path.to_string(),
            content: content.to_string(),
        }
    }

    #[test]
    fn stripper_blanks_comments_and_strings() {
        let src = "let a = \"unwrap()\"; // .unwrap()\n/* panic! */ let b = 'x';\n";
        let s = strip_code(src);
        assert!(!s.contains("unwrap"));
        assert!(!s.contains("panic"));
        assert_eq!(s.len(), src.len(), "layout preserved");
        assert_eq!(s.matches('\n').count(), 2);
    }

    #[test]
    fn stripper_handles_raw_strings_and_lifetimes() {
        let src = "let r = r#\"x.unwrap()\"#; fn f<'a>(x: &'a str) {}";
        let s = strip_code(src);
        assert!(!s.contains("unwrap"));
        assert!(s.contains("fn f<'a>"), "lifetime untouched: {s}");
    }

    #[test]
    fn no_panic_flags_hypervisor_code_only() {
        let bad = file(
            "crates/hypervisor/src/x.rs",
            "fn f() { y.unwrap(); z.expect(\"m\"); panic!(\"no\"); }",
        );
        let ok_crate = file("crates/core/src/x.rs", "fn f() { y.unwrap(); }");
        let v = lint_sources(&[bad, ok_crate]);
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(|f| f.rule == "no-panic"));
        assert!(v.iter().all(|f| f.file.starts_with("crates/hypervisor")));
    }

    #[test]
    fn no_panic_skips_tests_and_unwrap_or() {
        let src = "fn f() { a.unwrap_or(0); }\n#[cfg(test)]\nmod tests {\n    fn t() { b.unwrap(); panic!(); }\n}\n";
        let v = lint_sources(&[file("crates/hypervisor/src/x.rs", src)]);
        assert_eq!(v, vec![], "{v:?}");
    }

    #[test]
    fn boundary_allows_data_types_rejects_internals() {
        let ok = file(
            "crates/devices/src/x.rs",
            "use xoar_hypervisor::memory::Pfn; use xoar_hypervisor::grant::GrantRef;",
        );
        assert_eq!(lint_sources(&[ok]), vec![]);
        let bad = file(
            "crates/devices/src/x.rs",
            "use xoar_hypervisor::memory::MemoryManager;\nfn f(hv: &mut H) { hv.mem.populate(d, 4); hv.grants.clear(); }",
        );
        let v = lint_sources(&[bad]);
        let msgs: Vec<&str> = v.iter().map(|f| f.msg.as_str()).collect();
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(msgs.iter().any(|m| m.contains("MemoryManager")));
        assert!(msgs.iter().any(|m| m.contains(".mem.populate")));
        assert!(msgs.iter().any(|m| m.contains("grant-table")));
    }

    #[test]
    fn boundary_allows_read_side_mem_helpers() {
        let ok = file(
            "crates/core/src/x.rs",
            "fn f(p: &mut P) { p.hv.mem.read(g, Pfn(1)); p.hv.mem.share_identical(); }",
        );
        assert_eq!(lint_sources(&[ok]), vec![]);
    }

    #[test]
    fn region_isolation_flags_split_borrows_outside_xregion() {
        let body = "fn f(hv: &mut Hypervisor) { let (a, b) = region_pair_mut(hv, x, y); }";
        let bad = file("crates/hypervisor/src/event.rs", body);
        let v = lint_sources(&[bad]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "region-isolation");
        assert!(v[0].msg.contains("region_pair_mut"), "{v:?}");
        // The identical content under the CrossRegionOp module is fine.
        let ok = file("crates/hypervisor/src/xregion.rs", body);
        assert_eq!(lint_sources(&[ok]), vec![]);
    }

    #[test]
    fn region_isolation_flags_region_map_pokes() {
        let bad = file(
            "crates/core/src/x.rs",
            "fn f(hv: &mut Hypervisor) { hv.regions.get_mut(&dom).unwrap().ports.clear(); }",
        );
        let v = lint_sources(&[bad]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "region-isolation");
        assert!(v[0].msg.contains("region map"), "{v:?}");
        // hypervisor.rs owns the field; bare `regions` idents (locals,
        // parameters) and test code are not field pokes.
        let owner = file(
            "crates/hypervisor/src/hypervisor.rs",
            "fn f(&mut self) { self.regions.clear(); }",
        );
        let local = file(
            "crates/core/src/y.rs",
            "fn f(regions: usize) -> usize { regions + 1 }\n\
             #[cfg(test)]\nmod tests {\n    fn t(hv: &mut H) { hv.regions.len(); }\n}\n",
        );
        assert_eq!(lint_sources(&[owner, local]), vec![]);
    }

    #[test]
    fn dispatch_detects_missing_table_entry() {
        let hc = file(
            "crates/hypervisor/src/hypercall.rs",
            "pub enum HypercallId {\n    Alpha,\n    Beta,\n}\n\
             impl_json_enum!(HypercallId { Alpha => \"alpha\", Beta => \"beta\" });\n\
             pub const HYPERCALL_COUNT: usize = 2;\n\
             impl HypercallId { pub const ALL: [HypercallId; 2] = [HypercallId::Alpha, HypercallId::Beta];\n\
             pub fn all_privileged() -> Vec<HypercallId> { vec![Alpha] }\n\
             pub fn all_unprivileged() -> Vec<HypercallId> { vec![Beta] }\n\
             pub fn name(self) -> &'static str { match self { Alpha => \"a\" } } }\n",
        );
        let v = lint_sources(&[hc]);
        assert!(
            v.iter().any(|f| f.rule == "dispatch-exhaustive"
                && f.msg.contains("Beta")
                && f.msg.contains("name()")),
            "{v:?}"
        );
        // Alpha and the other tables are complete: no findings for Alpha.
        assert!(v.iter().all(|f| !f.msg.contains("Alpha")), "{v:?}");
    }

    #[test]
    fn dispatch_detects_partition_and_count_drift() {
        let hc = file(
            "crates/hypervisor/src/hypercall.rs",
            "pub enum HypercallId {\n    Alpha,\n    Beta,\n}\n\
             impl_json_enum!(HypercallId { Alpha => \"alpha\", Beta => \"beta\" });\n\
             pub const HYPERCALL_COUNT: usize = 3;\n\
             impl HypercallId { pub const ALL: [HypercallId; 2] = [HypercallId::Alpha, HypercallId::Beta];\n\
             pub fn all_privileged() -> Vec<HypercallId> { vec![Alpha, Beta] }\n\
             pub fn all_unprivileged() -> Vec<HypercallId> { vec![Beta] }\n\
             pub fn name(self) -> &'static str { match self { Alpha => \"a\", Beta => \"b\" } } }\n",
        );
        let v = lint_sources(&[hc]);
        assert!(v.iter().any(|f| f.msg.contains("exactly one")), "{v:?}");
        assert!(v.iter().any(|f| f.msg.contains("HYPERCALL_COUNT")), "{v:?}");
    }

    #[test]
    fn dispatch_checks_dispatcher_arms_cross_file() {
        let hc = file(
            "crates/hypervisor/src/hypercall.rs",
            "pub enum HypercallId { Alpha, }\n\
             impl_json_enum!(HypercallId { Alpha => \"alpha\" });\n\
             pub const HYPERCALL_COUNT: usize = 1;\n\
             impl HypercallId { pub const ALL: [HypercallId; 1] = [HypercallId::Alpha];\n\
             pub fn all_privileged() -> Vec<HypercallId> { vec![Alpha] }\n\
             pub fn all_unprivileged() -> Vec<HypercallId> { vec![] }\n\
             pub fn name(self) -> &'static str { match self { Alpha => \"a\" } } }\n\
             pub enum Hypercall { DoAlpha { x: u32 }, DoGamma, }\n\
             impl Hypercall { pub fn id(&self) -> HypercallId { match self { DoAlpha{..} => Alpha, DoGamma => Alpha } } }\n",
        );
        let hv = file(
            "crates/hypervisor/src/hypervisor.rs",
            "fn dispatch(c: Hypercall) { match c { Hypercall::DoAlpha { x } => drop(x), } }",
        );
        let v = lint_sources(&[hc, hv]);
        assert!(
            v.iter()
                .any(|f| f.msg.contains("DoGamma") && f.msg.contains("dispatch arm")),
            "{v:?}"
        );
        assert!(v.iter().all(|f| !f.msg.contains("DoAlpha")), "{v:?}");
    }

    #[test]
    fn allowlist_suppresses_by_needle() {
        let bad = file(
            "crates/hypervisor/src/x.rs",
            "fn f() { y.unwrap(); }\nfn g() { z.unwrap(); }",
        );
        let v = lint_sources(&[bad]);
        assert_eq!(v.len(), 2);
        let allow = Allowlist::parse("# comment\ncrates/hypervisor/src/x.rs|no-panic|y.unwrap()\n");
        assert_eq!(allow.len(), 1);
        let (kept, suppressed) = apply_allowlist(v, &allow);
        assert_eq!(kept.len(), 1);
        assert_eq!(suppressed.len(), 1);
        assert!(kept[0].excerpt.contains("z.unwrap"));
    }

    #[test]
    fn stale_allowlist_entries_are_reported() {
        let bad = file("crates/hypervisor/src/x.rs", "fn f() { y.unwrap(); }");
        let v = lint_sources(&[bad]);
        let allow = Allowlist::parse(
            "crates/hypervisor/src/x.rs|no-panic|y.unwrap()\n\
             crates/hypervisor/src/x.rs|no-panic|gone.unwrap()\n\
             crates/hypervisor/src/other.rs|no-panic|y.unwrap()\n",
        );
        let stale = allow.unused_entries(&v);
        assert_eq!(
            stale,
            vec![
                "crates/hypervisor/src/x.rs|no-panic|gone.unwrap()".to_string(),
                "crates/hypervisor/src/other.rs|no-panic|y.unwrap()".to_string(),
            ]
        );
        assert!(Allowlist::default().unused_entries(&v).is_empty());
    }

    #[test]
    fn findings_are_deterministic() {
        let files = [
            file("crates/hypervisor/src/b.rs", "fn f() { x.unwrap(); }"),
            file("crates/hypervisor/src/a.rs", "fn f() { panic!(); }"),
        ];
        let a = lint_sources(&files);
        let b = lint_sources(&files);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "sorted output");
    }
}
