//! The XenStore ring transport (§4.4).
//!
//! "All VMs, including Dom0, set up an I/O ring during bootup for
//! XenStore communication. Since XenStore is required in the creation and
//! bootup process, it does not use grant tables for memory sharing, but
//! instead relies on Dom0 privileges to directly map the I/O ring for all
//! the VMs" — which is exactly the privilege Xoar's Builder replaces with
//! a boot-time grant (§5.6).
//!
//! This module carries the [`crate::proto`] frames over per-domain
//! request/response queues, modelling the store ring: guests enqueue
//! framed requests, the store's service loop drains every ring, and
//! replies (plus asynchronous watch events) flow back. In-flight frames
//! are bounded per connection, modelling the single shared page.

use std::collections::VecDeque;

use xoar_hypervisor::fasthash::FastMap;
use xoar_hypervisor::DomId;

use crate::proto::{Request, Response, XenStore};

/// Maximum in-flight requests per connection (one 4 KiB ring of ~32
/// frames in the C implementation).
pub const RING_CAPACITY: usize = 32;

/// One domain's store ring.
#[derive(Debug, Default)]
struct StoreRing {
    requests: VecDeque<(u32, Request)>,
    responses: VecDeque<(u32, Response)>,
    next_req_id: u32,
}

/// The ring-transport front of a [`XenStore`].
#[derive(Debug)]
pub struct XsRingTransport {
    rings: FastMap<DomId, StoreRing>,
    served: u64,
}

/// Errors from the transport layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XsRingError {
    /// The domain has no store ring (not connected at boot).
    NotConnected,
    /// The ring is full; back off and retry after draining responses.
    RingFull,
}

impl std::fmt::Display for XsRingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XsRingError::NotConnected => write!(f, "no store ring for domain"),
            XsRingError::RingFull => write!(f, "store ring full"),
        }
    }
}

impl std::error::Error for XsRingError {}

impl XsRingTransport {
    /// Creates an empty transport.
    pub fn new() -> Self {
        XsRingTransport {
            rings: FastMap::default(),
            served: 0,
        }
    }

    /// Connects a domain's store ring (performed at boot, over the page
    /// the Builder granted).
    pub fn connect(&mut self, dom: DomId) {
        self.rings.entry(dom).or_default();
    }

    /// Disconnects a domain (domain death).
    pub fn disconnect(&mut self, dom: DomId) {
        self.rings.remove(&dom);
    }

    /// Whether `dom` has a ring.
    pub fn is_connected(&self, dom: DomId) -> bool {
        self.rings.contains_key(&dom)
    }

    /// Guest side: enqueue a framed request. Returns its request ID.
    pub fn submit(&mut self, dom: DomId, req: Request) -> Result<u32, XsRingError> {
        let ring = self.rings.get_mut(&dom).ok_or(XsRingError::NotConnected)?;
        if ring.requests.len() >= RING_CAPACITY {
            return Err(XsRingError::RingFull);
        }
        let id = ring.next_req_id;
        ring.next_req_id += 1;
        ring.requests.push_back((id, req));
        Ok(id)
    }

    /// Guest side: dequeue the next response, if any.
    pub fn poll(&mut self, dom: DomId) -> Option<(u32, Response)> {
        self.rings.get_mut(&dom)?.responses.pop_front()
    }

    /// Store side: one service-loop pass — drain every ring through the
    /// store, in domain order (round-robin across connections per pass,
    /// bounded work per ring so one chatty guest cannot starve others).
    pub fn service(&mut self, store: &mut XenStore) -> u64 {
        let mut doms: Vec<DomId> = self.rings.keys().copied().collect();
        doms.sort_unstable();
        let mut handled = 0;
        for dom in doms {
            let ring = self.rings.get_mut(&dom).expect("listed");
            // Bounded per pass: fairness under flood.
            for _ in 0..RING_CAPACITY {
                let Some((id, req)) = ring.requests.pop_front() else {
                    break;
                };
                let resp = store.handle(dom, req);
                ring.responses.push_back((id, resp));
                handled += 1;
            }
        }
        self.served += handled;
        handled
    }

    /// Total frames served over the transport's lifetime.
    pub fn served(&self) -> u64 {
        self.served
    }
}

impl Default for XsRingTransport {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (XsRingTransport, XenStore, DomId, DomId) {
        let mut t = XsRingTransport::new();
        let mut xs = XenStore::new();
        let dom0 = DomId(0);
        let guest = DomId(5);
        xs.set_privileged(dom0, true);
        xs.create_domain_home(dom0, guest).unwrap();
        t.connect(dom0);
        t.connect(guest);
        (t, xs, dom0, guest)
    }

    #[test]
    fn request_response_over_ring() {
        let (mut t, mut xs, _dom0, guest) = setup();
        let id = t
            .submit(
                guest,
                Request::Write {
                    txn: None,
                    path: "/local/domain/5/name".into(),
                    value: b"ringed".to_vec(),
                },
            )
            .unwrap();
        assert!(t.poll(guest).is_none(), "no response before service");
        assert_eq!(t.service(&mut xs), 1);
        let (rid, resp) = t.poll(guest).unwrap();
        assert_eq!(rid, id);
        assert!(matches!(resp, Response::Ok));
        // Read it back over the ring too.
        t.submit(
            guest,
            Request::Read {
                txn: None,
                path: "/local/domain/5/name".into(),
            },
        )
        .unwrap();
        t.service(&mut xs);
        match t.poll(guest).unwrap().1 {
            Response::Value(v) => assert_eq!(v, b"ringed"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unconnected_domain_refused() {
        let (mut t, _xs, _dom0, _guest) = setup();
        assert_eq!(
            t.submit(DomId(99), Request::TxnStart),
            Err(XsRingError::NotConnected)
        );
        assert!(t.poll(DomId(99)).is_none());
    }

    #[test]
    fn ring_capacity_backpressure() {
        let (mut t, mut xs, _dom0, guest) = setup();
        for _ in 0..RING_CAPACITY {
            t.submit(
                guest,
                Request::Directory {
                    txn: None,
                    path: "/".into(),
                },
            )
            .unwrap();
        }
        assert_eq!(
            t.submit(guest, Request::TxnStart),
            Err(XsRingError::RingFull)
        );
        // Draining restores capacity.
        t.service(&mut xs);
        t.submit(guest, Request::TxnStart).unwrap();
    }

    #[test]
    fn service_is_fair_across_connections() {
        let (mut t, mut xs, dom0, guest) = setup();
        // Guest floods; dom0 sends one request.
        for _ in 0..RING_CAPACITY {
            t.submit(
                guest,
                Request::Directory {
                    txn: None,
                    path: "/".into(),
                },
            )
            .unwrap();
        }
        t.submit(
            dom0,
            Request::Directory {
                txn: None,
                path: "/".into(),
            },
        )
        .unwrap();
        let handled = t.service(&mut xs);
        assert_eq!(
            handled as usize,
            RING_CAPACITY + 1,
            "everyone served in one pass"
        );
        assert!(
            t.poll(dom0).is_some(),
            "the quiet connection was not starved"
        );
    }

    #[test]
    fn request_ids_correlate_out_of_order_consumers() {
        let (mut t, mut xs, _dom0, guest) = setup();
        let a = t
            .submit(
                guest,
                Request::Write {
                    txn: None,
                    path: "/local/domain/5/a".into(),
                    value: vec![],
                },
            )
            .unwrap();
        let b = t
            .submit(
                guest,
                Request::Read {
                    txn: None,
                    path: "/local/domain/5/a".into(),
                },
            )
            .unwrap();
        t.service(&mut xs);
        let (ra, _) = t.poll(guest).unwrap();
        let (rb, _) = t.poll(guest).unwrap();
        assert_eq!((ra, rb), (a, b), "responses carry the request IDs in order");
    }

    #[test]
    fn disconnect_drops_ring() {
        let (mut t, mut xs, _dom0, guest) = setup();
        t.submit(guest, Request::TxnStart).unwrap();
        t.disconnect(guest);
        assert!(!t.is_connected(guest));
        assert_eq!(t.service(&mut xs), 0, "nothing left to serve");
    }

    #[test]
    fn logic_restart_between_passes_is_invisible() {
        let (mut t, mut xs, _dom0, guest) = setup();
        t.submit(
            guest,
            Request::Write {
                txn: None,
                path: "/local/domain/5/k".into(),
                value: b"v".to_vec(),
            },
        )
        .unwrap();
        t.service(&mut xs);
        xs.restart_logic();
        t.submit(
            guest,
            Request::Read {
                txn: None,
                path: "/local/domain/5/k".into(),
            },
        )
        .unwrap();
        t.service(&mut xs);
        let _ = t.poll(guest).unwrap();
        match t.poll(guest).unwrap().1 {
            Response::Value(v) => assert_eq!(v, b"v"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
