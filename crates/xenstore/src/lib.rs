//! # xoar-xenstore
//!
//! XenStore — the hierarchical key-value registry and naming service of
//! the Xen platform (§4.4) — implemented with Xoar's Logic/State split
//! (§5.1):
//!
//! * [`state::XenStoreState`] is the long-lived component holding all
//!   durable data behind a narrow key-value protocol;
//! * [`logic::XenStoreLogic`] implements the full store semantics
//!   (hierarchy, ACLs, watches, transactions, quotas) statelessly and can
//!   be microrebooted at any time;
//! * [`proto::XenStore`] is the assembled service plus the wire-protocol
//!   frames guests exchange over the store ring.
//!
//! # Examples
//!
//! ```
//! use xoar_hypervisor::DomId;
//! use xoar_xenstore::XenStore;
//!
//! let mut xs = XenStore::new();
//! let toolstack = DomId(1);
//! let guest = DomId(5);
//! xs.set_privileged(toolstack, true);
//! xs.create_domain_home(toolstack, guest).unwrap();
//! xs.write_str(guest, "/local/domain/5/name", "web").unwrap();
//!
//! // The Logic half can be microrebooted without losing the write.
//! xs.restart_logic();
//! assert_eq!(xs.read_str(guest, "/local/domain/5/name").unwrap(), "web");
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod logic;
pub mod path;
pub mod perm;
pub mod proto;
pub mod ring;
pub mod state;
pub mod watch;

pub use error::{XsError, XsResult};
pub use logic::{Quotas, XenStoreLogic};
pub use path::XsPath;
pub use perm::{NodePerms, PermEntry, PermLevel};
pub use proto::{Request, Response, XenStore};
pub use ring::{XsRingError, XsRingTransport};
pub use state::XenStoreState;
pub use watch::WatchEvent;
