//! XenStore-State: the long-lived half of the split XenStore (§5.1).
//!
//! State is a deliberately dumb, flat key-value store: it knows nothing of
//! hierarchy, permissions semantics, transactions, or watches — all of
//! that lives in the restartable [`crate::logic::XenStoreLogic`]. The two
//! halves communicate over the "single, narrow, key-value based
//! communication protocol" the paper describes, modelled here as the
//! [`KvRequest`]/[`KvReply`] pair.
//!
//! Keeping State this small is what makes Logic restartable for free:
//! Logic's only durable obligation is to journal every mutation through
//! the protocol before acknowledging, so a fresh Logic instance starts
//! from an empty cache and lazily reads through.

use std::collections::BTreeMap;

use xoar_hypervisor::DomId;

use crate::perm::NodePerms;

/// Reserved key prefix for Logic-journaled metadata (watch registrations
/// and the like). Entries under it are store-visible but excluded from
/// the per-owner node index: they are bookkeeping, not guest data.
const RESERVED_PREFIX: &str = "/@";

/// A stored node record: value bytes, permissions, and a generation
/// counter bumped on every mutation (used for transaction conflict
/// detection).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeRecord {
    /// Node contents.
    pub value: Vec<u8>,
    /// Node permissions.
    pub perms: NodePerms,
    /// Mutation generation.
    pub generation: u64,
}

xoar_codec::impl_json_struct!(NodeRecord {
    value,
    perms,
    generation
});

/// A request on the narrow Logic→State protocol.
#[derive(Debug, Clone)]
pub enum KvRequest {
    /// Fetch one record.
    Get(String),
    /// Insert or replace one record.
    Put(String, NodeRecord),
    /// Remove one record.
    Delete(String),
    /// List keys strictly under `prefix + "/"` plus the prefix itself.
    ListSubtree(String),
    /// Fetch the global generation counter.
    Generation,
}

/// A reply on the narrow protocol.
#[derive(Debug, Clone)]
pub enum KvReply {
    /// Reply to `Get`: the record, if present.
    Record(Option<NodeRecord>),
    /// Reply to `Put`/`Delete`.
    Done,
    /// Reply to `ListSubtree`: matching keys in order.
    Keys(Vec<String>),
    /// Reply to `Generation`.
    Generation(u64),
}

/// The State component.
///
/// The paper's State shard is "long-lived and contains all the XenStore
/// data"; it survives every Logic restart.
#[derive(Debug, Default, Clone)]
pub struct XenStoreState {
    map: BTreeMap<String, NodeRecord>,
    generation: u64,
    /// Protocol-operation counter (evaluation: narrowness of the interface
    /// is an argument, volume is a metric). Tolerated as missing on
    /// recovery so pre-counter persisted blobs still load.
    ops_served: u64,
    /// Incrementally-maintained per-owner live node counts, excluding the
    /// reserved `/@...` namespace. This is the index a restarting Logic
    /// rebuilds its quota accounting from in O(owners) instead of
    /// re-scanning (and re-cloning) every record in the store. Derived
    /// state: never serialised, rebuilt on [`XenStoreState::recover`].
    owner_counts: BTreeMap<DomId, u64>,
}

// Hand-written codec impls (instead of `impl_json_struct!`) so the
// derived `owner_counts` index stays out of the persisted form — the
// blob layout is byte-identical to the pre-index format, and decoding
// rebuilds the index from the map.
impl xoar_codec::ToJson for XenStoreState {
    fn to_json(&self) -> xoar_codec::Json {
        xoar_codec::Json::Obj(vec![
            ("map".to_string(), xoar_codec::ToJson::to_json(&self.map)),
            (
                "generation".to_string(),
                xoar_codec::ToJson::to_json(&self.generation),
            ),
            (
                "ops_served".to_string(),
                xoar_codec::ToJson::to_json(&self.ops_served),
            ),
        ])
    }
}

impl xoar_codec::FromJson for XenStoreState {
    fn from_json(value: &xoar_codec::Json) -> Result<Self, xoar_codec::JsonError> {
        let members = value
            .as_obj()
            .ok_or_else(|| xoar_codec::JsonError::expected("object", "XenStoreState"))?;
        let mut state = XenStoreState {
            map: xoar_codec::field(members, "map")?,
            generation: xoar_codec::field(members, "generation")?,
            ops_served: xoar_codec::field_or_default(members, "ops_served")?,
            owner_counts: BTreeMap::new(),
        };
        state.rebuild_owner_index();
        Ok(state)
    }
}

impl XenStoreState {
    /// Creates an empty State.
    pub fn new() -> Self {
        Self::default()
    }

    fn index_add(&mut self, owner: DomId) {
        *self.owner_counts.entry(owner).or_insert(0) += 1;
    }

    fn index_remove(&mut self, owner: DomId) {
        if let Some(c) = self.owner_counts.get_mut(&owner) {
            *c = c.saturating_sub(1);
            if *c == 0 {
                self.owner_counts.remove(&owner);
            }
        }
    }

    /// Recomputes the owner index from the map (blob recovery only; the
    /// serving path maintains it incrementally).
    fn rebuild_owner_index(&mut self) {
        self.owner_counts.clear();
        for (key, rec) in &self.map {
            if !key.starts_with(RESERVED_PREFIX) {
                *self.owner_counts.entry(rec.perms.owner).or_insert(0) += 1;
            }
        }
    }

    /// Serves one request of the narrow protocol.
    pub fn serve(&mut self, req: KvRequest) -> KvReply {
        self.ops_served += 1;
        match req {
            KvRequest::Get(key) => KvReply::Record(self.map.get(&key).cloned()),
            KvRequest::Put(key, mut rec) => {
                self.generation += 1;
                rec.generation = self.generation;
                let indexed = !key.starts_with(RESERVED_PREFIX);
                let owner = rec.perms.owner;
                if let Some(old) = self.map.insert(key, rec) {
                    if indexed {
                        self.index_remove(old.perms.owner);
                    }
                }
                if indexed {
                    self.index_add(owner);
                }
                KvReply::Done
            }
            KvRequest::Delete(key) => {
                if let Some(old) = self.map.remove(&key) {
                    self.generation += 1;
                    if !key.starts_with(RESERVED_PREFIX) {
                        self.index_remove(old.perms.owner);
                    }
                }
                KvReply::Done
            }
            KvRequest::ListSubtree(prefix) => {
                let mut keys = Vec::new();
                if self.map.contains_key(&prefix) {
                    keys.push(prefix.clone());
                }
                let sub = if prefix == "/" {
                    "/".to_string()
                } else {
                    format!("{prefix}/")
                };
                for key in self.map.range(sub.clone()..) {
                    if !key.0.starts_with(&sub) {
                        break;
                    }
                    keys.push(key.0.clone());
                }
                KvReply::Keys(keys)
            }
            KvRequest::Generation => KvReply::Generation(self.generation),
        }
    }

    /// Number of records held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total protocol operations served.
    pub fn ops_served(&self) -> u64 {
        self.ops_served
    }

    /// Current global generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Direct record access for assertions in tests and audit tooling.
    pub fn peek(&self, key: &str) -> Option<&NodeRecord> {
        self.map.get(key)
    }

    /// The incrementally-maintained per-owner node-count index (reserved
    /// `/@...` entries excluded). A restarting Logic copies its quota
    /// accounting straight out of this instead of scanning the store.
    pub fn owner_counts(&self) -> &BTreeMap<DomId, u64> {
        &self.owner_counts
    }

    /// Iterates the records whose keys start with `prefix`, by reference
    /// (a range scan over the sorted map: no key list is materialised and
    /// no values are cloned). Restart support: Logic rebuilds its watch
    /// registry from the `/@watch/...` entries this yields.
    pub fn entries_under<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a String, &'a NodeRecord)> + 'a {
        use std::ops::Bound;
        self.map
            .range::<str, _>((Bound::Included(prefix), Bound::Unbounded))
            .take_while(move |(k, _)| k.starts_with(prefix))
    }

    /// Serialises the whole State for disk persistence — §7.1: "XenStore
    /// could potentially be restarted by persisting its state to disk,
    /// and checking and recovering that state on restart."
    pub fn persist(&self) -> String {
        xoar_codec::to_string(self)
    }

    /// Recovers a State from its persisted form, validating the record
    /// generations against the global counter (the §7.1 "checking" step).
    pub fn recover(persisted: &str) -> Result<Self, String> {
        let state: XenStoreState =
            xoar_codec::from_str(persisted).map_err(|e| format!("corrupt state: {e}"))?;
        for (key, rec) in &state.map {
            if rec.generation > state.generation {
                return Err(format!(
                    "record {key} from the future (gen {} > global {})",
                    rec.generation, state.generation
                ));
            }
        }
        Ok(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xoar_hypervisor::DomId;

    fn rec(v: &str) -> NodeRecord {
        NodeRecord {
            value: v.as_bytes().to_vec(),
            perms: NodePerms::owner_only(DomId(0)),
            generation: 0,
        }
    }

    #[test]
    fn put_get_round_trip() {
        let mut s = XenStoreState::new();
        s.serve(KvRequest::Put("/a".into(), rec("hello")));
        match s.serve(KvRequest::Get("/a".into())) {
            KvReply::Record(Some(r)) => assert_eq!(r.value, b"hello"),
            other => panic!("unexpected {other:?}"),
        }
        match s.serve(KvRequest::Get("/missing".into())) {
            KvReply::Record(None) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn generations_increase_monotonically() {
        let mut s = XenStoreState::new();
        s.serve(KvRequest::Put("/a".into(), rec("1")));
        let g1 = match s.serve(KvRequest::Get("/a".into())) {
            KvReply::Record(Some(r)) => r.generation,
            _ => unreachable!(),
        };
        s.serve(KvRequest::Put("/a".into(), rec("2")));
        let g2 = match s.serve(KvRequest::Get("/a".into())) {
            KvReply::Record(Some(r)) => r.generation,
            _ => unreachable!(),
        };
        assert!(g2 > g1);
    }

    #[test]
    fn delete_removes_and_bumps_generation() {
        let mut s = XenStoreState::new();
        s.serve(KvRequest::Put("/a".into(), rec("x")));
        let g = s.generation();
        s.serve(KvRequest::Delete("/a".into()));
        assert!(s.generation() > g);
        assert!(matches!(
            s.serve(KvRequest::Get("/a".into())),
            KvReply::Record(None)
        ));
        // Deleting a missing key does not bump.
        let g = s.generation();
        s.serve(KvRequest::Delete("/a".into()));
        assert_eq!(s.generation(), g);
    }

    #[test]
    fn list_subtree_respects_component_boundaries() {
        let mut s = XenStoreState::new();
        for k in ["/a", "/a/b", "/a/b/c", "/ab", "/z"] {
            s.serve(KvRequest::Put(k.into(), rec("v")));
        }
        match s.serve(KvRequest::ListSubtree("/a".into())) {
            KvReply::Keys(keys) => {
                assert_eq!(keys, vec!["/a", "/a/b", "/a/b/c"], "must exclude /ab");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn list_subtree_of_root() {
        let mut s = XenStoreState::new();
        s.serve(KvRequest::Put("/a".into(), rec("v")));
        s.serve(KvRequest::Put("/b".into(), rec("v")));
        match s.serve(KvRequest::ListSubtree("/".into())) {
            KvReply::Keys(keys) => assert_eq!(keys, vec!["/a", "/b"]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn owner_index_tracks_puts_deletes_and_owner_changes() {
        let mut s = XenStoreState::new();
        let a = DomId(1);
        let b = DomId(2);
        let mut ra = rec("x");
        ra.perms = NodePerms::owner_only(a);
        let mut rb = rec("y");
        rb.perms = NodePerms::owner_only(b);
        s.serve(KvRequest::Put("/n1".into(), ra.clone()));
        s.serve(KvRequest::Put("/n2".into(), ra.clone()));
        assert_eq!(s.owner_counts().get(&a), Some(&2));
        // Replacing a record with a different owner moves the charge.
        s.serve(KvRequest::Put("/n2".into(), rb.clone()));
        assert_eq!(s.owner_counts().get(&a), Some(&1));
        assert_eq!(s.owner_counts().get(&b), Some(&1));
        // Deletes drain the index; zero-count owners drop out entirely.
        s.serve(KvRequest::Delete("/n1".into()));
        s.serve(KvRequest::Delete("/n2".into()));
        assert!(s.owner_counts().is_empty());
    }

    #[test]
    fn reserved_namespace_excluded_from_owner_index() {
        let mut s = XenStoreState::new();
        s.serve(KvRequest::Put("/@watch/7/tok".into(), rec("7|/a|tok")));
        assert!(s.owner_counts().is_empty(), "journal keys are not charged");
        assert_eq!(
            s.entries_under("/@watch").count(),
            1,
            "but they are reachable through the range scan"
        );
    }

    #[test]
    fn entries_under_respects_prefix_bounds() {
        let mut s = XenStoreState::new();
        for k in ["/a", "/a/b", "/ab", "/b"] {
            s.serve(KvRequest::Put(k.into(), rec("v")));
        }
        let keys: Vec<&str> = s.entries_under("/a").map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["/a", "/a/b", "/ab"], "raw prefix match");
    }

    #[test]
    fn ops_counter_tracks_protocol_traffic() {
        let mut s = XenStoreState::new();
        s.serve(KvRequest::Generation);
        s.serve(KvRequest::Put("/a".into(), rec("v")));
        s.serve(KvRequest::Get("/a".into()));
        assert_eq!(s.ops_served(), 3);
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;
    use xoar_hypervisor::DomId;

    fn rec2(v: &str) -> NodeRecord {
        NodeRecord {
            value: v.as_bytes().to_vec(),
            perms: crate::perm::NodePerms::owner_only(DomId(0)),
            generation: 0,
        }
    }

    #[test]
    fn persist_recover_round_trip() {
        let mut s = XenStoreState::new();
        s.serve(KvRequest::Put("/a".into(), rec2("alpha")));
        s.serve(KvRequest::Put("/a/b".into(), rec2("beta")));
        let blob = s.persist();
        let r = XenStoreState::recover(&blob).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.peek("/a").unwrap().value, b"alpha");
        assert_eq!(r.generation(), s.generation());
    }

    #[test]
    fn recover_rebuilds_owner_index() {
        let mut s = XenStoreState::new();
        s.serve(KvRequest::Put("/a".into(), rec2("alpha")));
        s.serve(KvRequest::Put("/a/b".into(), rec2("beta")));
        s.serve(KvRequest::Put("/@watch/0/t".into(), rec2("0|/a|t")));
        let r = XenStoreState::recover(&s.persist()).unwrap();
        assert_eq!(r.owner_counts(), s.owner_counts());
        assert_eq!(r.owner_counts().get(&DomId(0)), Some(&2));
    }

    #[test]
    fn corrupt_blob_rejected() {
        assert!(XenStoreState::recover("not json").is_err());
    }

    #[test]
    fn future_generation_rejected() {
        let mut s = XenStoreState::new();
        s.serve(KvRequest::Put("/a".into(), rec2("x")));
        let blob = s.persist();
        // Tamper: bump the *record's* generation (serialized first, inside
        // the map) beyond the global counter.
        let blob = blob.replacen("\"generation\":1", "\"generation\":999", 1);
        assert!(XenStoreState::recover(&blob).is_err());
    }

    #[test]
    fn recovered_state_serves_a_fresh_logic() {
        use crate::logic::XenStoreLogic;
        use crate::path::XsPath;
        let dom0 = DomId(0);
        let mut logic = XenStoreLogic::new();
        logic.set_privileged(dom0, true);
        let mut state = XenStoreState::new();
        logic
            .write(
                &mut state,
                dom0,
                None,
                &XsPath::parse("/tool/cfg").unwrap(),
                b"v1",
            )
            .unwrap();
        // "Restart XenStore by persisting its state to disk": both halves
        // die; State comes back from the blob, Logic recovers from it.
        let blob = state.persist();
        drop((logic, state));
        let mut state = XenStoreState::recover(&blob).unwrap();
        let mut logic = XenStoreLogic::new();
        logic.set_privileged(dom0, true);
        logic.recover(&mut state);
        assert_eq!(
            logic
                .read(&mut state, dom0, None, &XsPath::parse("/tool/cfg").unwrap())
                .unwrap(),
            b"v1"
        );
    }
}
