//! XenStore-State: the long-lived half of the split XenStore (§5.1).
//!
//! State is a deliberately dumb, flat key-value store: it knows nothing of
//! hierarchy, permissions semantics, transactions, or watches — all of
//! that lives in the restartable [`crate::logic::XenStoreLogic`]. The two
//! halves communicate over the "single, narrow, key-value based
//! communication protocol" the paper describes, modelled here as the
//! [`KvRequest`]/[`KvReply`] pair.
//!
//! Keeping State this small is what makes Logic restartable for free:
//! Logic's only durable obligation is to journal every mutation through
//! the protocol before acknowledging, so a fresh Logic instance starts
//! from an empty cache and lazily reads through.

use std::collections::BTreeMap;

use crate::perm::NodePerms;

/// A stored node record: value bytes, permissions, and a generation
/// counter bumped on every mutation (used for transaction conflict
/// detection).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeRecord {
    /// Node contents.
    pub value: Vec<u8>,
    /// Node permissions.
    pub perms: NodePerms,
    /// Mutation generation.
    pub generation: u64,
}

xoar_codec::impl_json_struct!(NodeRecord {
    value,
    perms,
    generation
});

/// A request on the narrow Logic→State protocol.
#[derive(Debug, Clone)]
pub enum KvRequest {
    /// Fetch one record.
    Get(String),
    /// Insert or replace one record.
    Put(String, NodeRecord),
    /// Remove one record.
    Delete(String),
    /// List keys strictly under `prefix + "/"` plus the prefix itself.
    ListSubtree(String),
    /// Fetch the global generation counter.
    Generation,
}

/// A reply on the narrow protocol.
#[derive(Debug, Clone)]
pub enum KvReply {
    /// Reply to `Get`: the record, if present.
    Record(Option<NodeRecord>),
    /// Reply to `Put`/`Delete`.
    Done,
    /// Reply to `ListSubtree`: matching keys in order.
    Keys(Vec<String>),
    /// Reply to `Generation`.
    Generation(u64),
}

/// The State component.
///
/// The paper's State shard is "long-lived and contains all the XenStore
/// data"; it survives every Logic restart.
#[derive(Debug, Default, Clone)]
pub struct XenStoreState {
    map: BTreeMap<String, NodeRecord>,
    generation: u64,
    /// Protocol-operation counter (evaluation: narrowness of the interface
    /// is an argument, volume is a metric). Tolerated as missing on
    /// recovery so pre-counter persisted blobs still load.
    ops_served: u64,
}

xoar_codec::impl_json_struct!(XenStoreState { map, generation, [default] ops_served });

impl XenStoreState {
    /// Creates an empty State.
    pub fn new() -> Self {
        Self::default()
    }

    /// Serves one request of the narrow protocol.
    pub fn serve(&mut self, req: KvRequest) -> KvReply {
        self.ops_served += 1;
        match req {
            KvRequest::Get(key) => KvReply::Record(self.map.get(&key).cloned()),
            KvRequest::Put(key, mut rec) => {
                self.generation += 1;
                rec.generation = self.generation;
                self.map.insert(key, rec);
                KvReply::Done
            }
            KvRequest::Delete(key) => {
                if self.map.remove(&key).is_some() {
                    self.generation += 1;
                }
                KvReply::Done
            }
            KvRequest::ListSubtree(prefix) => {
                let mut keys = Vec::new();
                if self.map.contains_key(&prefix) {
                    keys.push(prefix.clone());
                }
                let sub = if prefix == "/" {
                    "/".to_string()
                } else {
                    format!("{prefix}/")
                };
                for key in self.map.range(sub.clone()..) {
                    if !key.0.starts_with(&sub) {
                        break;
                    }
                    keys.push(key.0.clone());
                }
                KvReply::Keys(keys)
            }
            KvRequest::Generation => KvReply::Generation(self.generation),
        }
    }

    /// Number of records held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total protocol operations served.
    pub fn ops_served(&self) -> u64 {
        self.ops_served
    }

    /// Current global generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Direct record access for assertions in tests and audit tooling.
    pub fn peek(&self, key: &str) -> Option<&NodeRecord> {
        self.map.get(key)
    }

    /// Serialises the whole State for disk persistence — §7.1: "XenStore
    /// could potentially be restarted by persisting its state to disk,
    /// and checking and recovering that state on restart."
    pub fn persist(&self) -> String {
        xoar_codec::to_string(self)
    }

    /// Recovers a State from its persisted form, validating the record
    /// generations against the global counter (the §7.1 "checking" step).
    pub fn recover(persisted: &str) -> Result<Self, String> {
        let state: XenStoreState =
            xoar_codec::from_str(persisted).map_err(|e| format!("corrupt state: {e}"))?;
        for (key, rec) in &state.map {
            if rec.generation > state.generation {
                return Err(format!(
                    "record {key} from the future (gen {} > global {})",
                    rec.generation, state.generation
                ));
            }
        }
        Ok(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xoar_hypervisor::DomId;

    fn rec(v: &str) -> NodeRecord {
        NodeRecord {
            value: v.as_bytes().to_vec(),
            perms: NodePerms::owner_only(DomId(0)),
            generation: 0,
        }
    }

    #[test]
    fn put_get_round_trip() {
        let mut s = XenStoreState::new();
        s.serve(KvRequest::Put("/a".into(), rec("hello")));
        match s.serve(KvRequest::Get("/a".into())) {
            KvReply::Record(Some(r)) => assert_eq!(r.value, b"hello"),
            other => panic!("unexpected {other:?}"),
        }
        match s.serve(KvRequest::Get("/missing".into())) {
            KvReply::Record(None) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn generations_increase_monotonically() {
        let mut s = XenStoreState::new();
        s.serve(KvRequest::Put("/a".into(), rec("1")));
        let g1 = match s.serve(KvRequest::Get("/a".into())) {
            KvReply::Record(Some(r)) => r.generation,
            _ => unreachable!(),
        };
        s.serve(KvRequest::Put("/a".into(), rec("2")));
        let g2 = match s.serve(KvRequest::Get("/a".into())) {
            KvReply::Record(Some(r)) => r.generation,
            _ => unreachable!(),
        };
        assert!(g2 > g1);
    }

    #[test]
    fn delete_removes_and_bumps_generation() {
        let mut s = XenStoreState::new();
        s.serve(KvRequest::Put("/a".into(), rec("x")));
        let g = s.generation();
        s.serve(KvRequest::Delete("/a".into()));
        assert!(s.generation() > g);
        assert!(matches!(
            s.serve(KvRequest::Get("/a".into())),
            KvReply::Record(None)
        ));
        // Deleting a missing key does not bump.
        let g = s.generation();
        s.serve(KvRequest::Delete("/a".into()));
        assert_eq!(s.generation(), g);
    }

    #[test]
    fn list_subtree_respects_component_boundaries() {
        let mut s = XenStoreState::new();
        for k in ["/a", "/a/b", "/a/b/c", "/ab", "/z"] {
            s.serve(KvRequest::Put(k.into(), rec("v")));
        }
        match s.serve(KvRequest::ListSubtree("/a".into())) {
            KvReply::Keys(keys) => {
                assert_eq!(keys, vec!["/a", "/a/b", "/a/b/c"], "must exclude /ab");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn list_subtree_of_root() {
        let mut s = XenStoreState::new();
        s.serve(KvRequest::Put("/a".into(), rec("v")));
        s.serve(KvRequest::Put("/b".into(), rec("v")));
        match s.serve(KvRequest::ListSubtree("/".into())) {
            KvReply::Keys(keys) => assert_eq!(keys, vec!["/a", "/b"]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ops_counter_tracks_protocol_traffic() {
        let mut s = XenStoreState::new();
        s.serve(KvRequest::Generation);
        s.serve(KvRequest::Put("/a".into(), rec("v")));
        s.serve(KvRequest::Get("/a".into()));
        assert_eq!(s.ops_served(), 3);
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;
    use xoar_hypervisor::DomId;

    fn rec2(v: &str) -> NodeRecord {
        NodeRecord {
            value: v.as_bytes().to_vec(),
            perms: crate::perm::NodePerms::owner_only(DomId(0)),
            generation: 0,
        }
    }

    #[test]
    fn persist_recover_round_trip() {
        let mut s = XenStoreState::new();
        s.serve(KvRequest::Put("/a".into(), rec2("alpha")));
        s.serve(KvRequest::Put("/a/b".into(), rec2("beta")));
        let blob = s.persist();
        let r = XenStoreState::recover(&blob).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.peek("/a").unwrap().value, b"alpha");
        assert_eq!(r.generation(), s.generation());
    }

    #[test]
    fn corrupt_blob_rejected() {
        assert!(XenStoreState::recover("not json").is_err());
    }

    #[test]
    fn future_generation_rejected() {
        let mut s = XenStoreState::new();
        s.serve(KvRequest::Put("/a".into(), rec2("x")));
        let blob = s.persist();
        // Tamper: bump the *record's* generation (serialized first, inside
        // the map) beyond the global counter.
        let blob = blob.replacen("\"generation\":1", "\"generation\":999", 1);
        assert!(XenStoreState::recover(&blob).is_err());
    }

    #[test]
    fn recovered_state_serves_a_fresh_logic() {
        use crate::logic::XenStoreLogic;
        use crate::path::XsPath;
        let dom0 = DomId(0);
        let mut logic = XenStoreLogic::new();
        logic.set_privileged(dom0, true);
        let mut state = XenStoreState::new();
        logic
            .write(
                &mut state,
                dom0,
                None,
                &XsPath::parse("/tool/cfg").unwrap(),
                b"v1",
            )
            .unwrap();
        // "Restart XenStore by persisting its state to disk": both halves
        // die; State comes back from the blob, Logic recovers from it.
        let blob = state.persist();
        drop((logic, state));
        let mut state = XenStoreState::recover(&blob).unwrap();
        let mut logic = XenStoreLogic::new();
        logic.set_privileged(dom0, true);
        logic.recover(&mut state);
        assert_eq!(
            logic
                .read(&mut state, dom0, None, &XsPath::parse("/tool/cfg").unwrap())
                .unwrap(),
            b"v1"
        );
    }
}
