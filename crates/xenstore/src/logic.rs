//! XenStore-Logic: the stateless, restartable half of the split store.
//!
//! Logic implements the full XenStore semantics — hierarchy, permission
//! checks, transactions, watches, quotas — but holds no durable state of
//! its own: every mutation is pushed through the narrow key-value protocol
//! to [`crate::state::XenStoreState`] before being acknowledged. Watch
//! *registrations* are journaled into State under the reserved
//! `/@watch/...` namespace, so a fresh Logic instance can rebuild its
//! registry with [`XenStoreLogic::recover`]; in-flight transactions and
//! undelivered watch events are deliberately lost on restart (§3.3: guest
//! protocols are designed to renegotiate).
//!
//! Because Logic is a pure function of (request, State), Xoar restarts it
//! "on each request" (Figure 5.1) without any visible state loss — the
//! property the `logic_restart` integration tests and the
//! `ablation_xenstore_split` bench exercise.

use std::collections::{BTreeMap, BTreeSet};

use xoar_hypervisor::fasthash::FastMap;
use xoar_hypervisor::DomId;

use crate::error::{XsError, XsResult};
use crate::path::XsPath;
use crate::perm::NodePerms;
use crate::state::{KvReply, KvRequest, NodeRecord, XenStoreState};
use crate::watch::{WatchEvent, WatchRegistry};

/// Default per-domain node quota (the C xenstored ships 1000; the paper's
/// §4.4 cites DoS when "a single VM monopolizes these resources").
pub const DEFAULT_NODE_QUOTA: usize = 1000;

/// Default per-domain watch quota (xenstored ships 128).
pub const DEFAULT_WATCH_QUOTA: usize = 128;

/// Default per-domain concurrent-transaction quota (xenstored ships 10).
pub const DEFAULT_TXN_QUOTA: usize = 10;

/// Reserved State-key prefix for journaled watch registrations.
const WATCH_JOURNAL: &str = "/@watch";

/// An in-flight transaction.
#[derive(Debug, Clone)]
struct Txn {
    dom: DomId,
    base_generation: u64,
    /// Overlay writes: `None` means deleted within the transaction.
    writes: BTreeMap<String, Option<NodeRecord>>,
    /// Keys read (for conflict detection).
    reads: BTreeSet<String>,
}

/// Quota configuration.
#[derive(Debug, Clone, Copy)]
pub struct Quotas {
    /// Maximum nodes owned per domain.
    pub nodes: usize,
    /// Maximum watches per domain.
    pub watches: usize,
    /// Maximum concurrent transactions per domain.
    pub transactions: usize,
}

impl Default for Quotas {
    fn default() -> Self {
        Quotas {
            nodes: DEFAULT_NODE_QUOTA,
            watches: DEFAULT_WATCH_QUOTA,
            transactions: DEFAULT_TXN_QUOTA,
        }
    }
}

/// The Logic component.
#[derive(Debug)]
pub struct XenStoreLogic {
    watches: WatchRegistry,
    txns: FastMap<u32, Txn>,
    next_txn: u32,
    privileged: BTreeSet<DomId>,
    quotas: Quotas,
    node_counts: FastMap<DomId, usize>,
    /// Count of requests processed since the last restart.
    requests_this_epoch: u64,
    /// Number of times this Logic has been restarted.
    pub restarts: u64,
}

impl XenStoreLogic {
    /// Creates a fresh Logic with default quotas.
    pub fn new() -> Self {
        XenStoreLogic {
            watches: WatchRegistry::new(),
            txns: FastMap::default(),
            next_txn: 1,
            privileged: BTreeSet::new(),
            quotas: Quotas::default(),
            node_counts: FastMap::default(),
            requests_this_epoch: 0,
            restarts: 0,
        }
    }

    /// Creates a Logic with explicit quotas.
    pub fn with_quotas(quotas: Quotas) -> Self {
        XenStoreLogic {
            quotas,
            ..Self::new()
        }
    }

    /// Marks a domain's connection as privileged (bypasses ACLs).
    ///
    /// Stock Xen grants this to Dom0; Xoar to the Toolstack and Builder
    /// shards only.
    pub fn set_privileged(&mut self, dom: DomId, privileged: bool) {
        if privileged {
            self.privileged.insert(dom);
        } else {
            self.privileged.remove(&dom);
        }
    }

    /// Whether `dom` has a privileged connection.
    pub fn is_privileged(&self, dom: DomId) -> bool {
        self.privileged.contains(&dom)
    }

    /// All domains holding privileged connections, in ascending order
    /// (audit/analysis surface: these are the ACL-bypass principals).
    pub fn privileged_domains(&self) -> Vec<DomId> {
        self.privileged.iter().copied().collect()
    }

    /// Simulates a microreboot of Logic: all volatile state is discarded
    /// in place (keeping the map/registry allocations — this is the
    /// Figure 5.1 per-request fast path, so a restart must not pay a
    /// round of reallocation) and then recovered from State's
    /// incrementally-maintained indexes. Privileged-connection marks
    /// survive: they come from the boot configuration, not the store.
    pub fn restart(&mut self, state: &XenStoreState) {
        self.watches.clear();
        self.txns.clear();
        self.next_txn = 1;
        self.node_counts.clear();
        self.requests_this_epoch = 0;
        self.restarts += 1;
        self.recover(state);
    }

    /// Rebuilds watch registrations and quota accounting from State.
    ///
    /// Quota accounting is copied straight out of State's per-owner node
    /// index — O(owners), not O(store) — and journaled watches are read
    /// by reference from the `/@watch/...` range, so recovery performs no
    /// per-key protocol round trips and clones no record values.
    pub fn recover(&mut self, state: &XenStoreState) {
        for (&owner, &count) in state.owner_counts() {
            self.node_counts.insert(owner, count as usize);
        }
        // Registered without the synthetic initial fire — the watcher
        // already received it when it registered.
        for (_key, rec) in state.entries_under(WATCH_JOURNAL) {
            if let Ok(journal) = std::str::from_utf8(&rec.value) {
                if let Some((dom, path, token)) = parse_watch_journal(journal) {
                    if let Ok(p) = XsPath::parse(path) {
                        self.watches.register_recovered(dom, p, token.to_string());
                    }
                }
            }
        }
    }

    // ----- helpers -----

    fn get_record(state: &mut XenStoreState, key: &str) -> Option<NodeRecord> {
        match state.serve(KvRequest::Get(key.to_string())) {
            KvReply::Record(r) => r,
            _ => None,
        }
    }

    fn can_read(&self, dom: DomId, rec: &NodeRecord) -> bool {
        self.is_privileged(dom) || rec.perms.can_read(dom)
    }

    fn can_write(&self, dom: DomId, rec: &NodeRecord) -> bool {
        self.is_privileged(dom) || rec.perms.can_write(dom)
    }

    /// Resolves a read within an optional transaction overlay.
    fn txn_read(
        &mut self,
        state: &mut XenStoreState,
        txn: Option<u32>,
        key: &str,
    ) -> XsResult<Option<NodeRecord>> {
        if let Some(id) = txn {
            let t = self.txns.get_mut(&id).ok_or(XsError::BadTxn(id))?;
            t.reads.insert(key.to_string());
            if let Some(overlay) = t.writes.get(key) {
                return Ok(overlay.clone());
            }
        }
        Ok(Self::get_record(state, key))
    }

    /// Charges one node to `owner`'s quota.
    fn charge_node(&mut self, owner: DomId) -> XsResult<()> {
        let count = self.node_counts.entry(owner).or_insert(0);
        if self.privileged.contains(&owner) {
            *count += 1;
            return Ok(());
        }
        if *count >= self.quotas.nodes {
            return Err(XsError::Quota("nodes"));
        }
        *count += 1;
        Ok(())
    }

    fn uncharge_node(&mut self, owner: DomId) {
        if let Some(c) = self.node_counts.get_mut(&owner) {
            *c = c.saturating_sub(1);
        }
    }

    // ----- the wire operations -----

    /// Reads a node's value.
    pub fn read(
        &mut self,
        state: &mut XenStoreState,
        dom: DomId,
        txn: Option<u32>,
        path: &XsPath,
    ) -> XsResult<Vec<u8>> {
        self.requests_this_epoch += 1;
        let rec = self
            .txn_read(state, txn, path.as_str())?
            .ok_or_else(|| XsError::NoEnt(path.to_string()))?;
        if !self.can_read(dom, &rec) {
            return Err(XsError::Acc {
                caller: dom,
                path: path.to_string(),
            });
        }
        Ok(rec.value)
    }

    /// Writes a node, creating it (and missing ancestors) if necessary.
    ///
    /// Creating a node requires write permission on the nearest existing
    /// ancestor; modifying one requires write permission on the node.
    pub fn write(
        &mut self,
        state: &mut XenStoreState,
        dom: DomId,
        txn: Option<u32>,
        path: &XsPath,
        value: &[u8],
    ) -> XsResult<()> {
        self.requests_this_epoch += 1;
        if path.as_str().starts_with(WATCH_JOURNAL) {
            return Err(XsError::Inval("reserved namespace".into()));
        }
        let existing = self.txn_read(state, txn, path.as_str())?;
        match existing {
            Some(mut rec) => {
                if !self.can_write(dom, &rec) {
                    return Err(XsError::Acc {
                        caller: dom,
                        path: path.to_string(),
                    });
                }
                rec.value = value.to_vec();
                self.apply_write(state, txn, path.as_str().to_string(), Some(rec))?;
            }
            None => {
                self.check_create(state, txn, dom, path)?;
                // Create missing ancestors; each new node is owned by the
                // writer.
                let mut to_create: Vec<XsPath> = Vec::new();
                for anc in path.ancestors() {
                    if anc.as_str() == "/" {
                        continue;
                    }
                    if self.txn_read(state, txn, anc.as_str())?.is_none() {
                        to_create.push(anc);
                    }
                }
                for anc in to_create {
                    self.charge_node(dom)?;
                    self.apply_write(
                        state,
                        txn,
                        anc.as_str().to_string(),
                        Some(NodeRecord {
                            value: Vec::new(),
                            perms: NodePerms::owner_only(dom),
                            generation: 0,
                        }),
                    )?;
                }
                self.charge_node(dom)?;
                self.apply_write(
                    state,
                    txn,
                    path.as_str().to_string(),
                    Some(NodeRecord {
                        value: value.to_vec(),
                        perms: NodePerms::owner_only(dom),
                        generation: 0,
                    }),
                )?;
            }
        }
        if txn.is_none() {
            self.watches.fire(path);
        }
        Ok(())
    }

    /// Permission check for creating `path`: write access to the nearest
    /// existing ancestor.
    fn check_create(
        &mut self,
        state: &mut XenStoreState,
        txn: Option<u32>,
        dom: DomId,
        path: &XsPath,
    ) -> XsResult<()> {
        if self.is_privileged(dom) {
            return Ok(());
        }
        let mut cur = path.parent();
        while let Some(p) = cur {
            if p.as_str() == "/" {
                // Root is writable only by privileged connections.
                return Err(XsError::Acc {
                    caller: dom,
                    path: path.to_string(),
                });
            }
            if let Some(rec) = self.txn_read(state, txn, p.as_str())? {
                return if rec.perms.can_write(dom) {
                    Ok(())
                } else {
                    Err(XsError::Acc {
                        caller: dom,
                        path: path.to_string(),
                    })
                };
            }
            cur = p.parent();
        }
        Err(XsError::Acc {
            caller: dom,
            path: path.to_string(),
        })
    }

    fn apply_write(
        &mut self,
        state: &mut XenStoreState,
        txn: Option<u32>,
        key: String,
        rec: Option<NodeRecord>,
    ) -> XsResult<()> {
        if let Some(id) = txn {
            let t = self.txns.get_mut(&id).ok_or(XsError::BadTxn(id))?;
            t.writes.insert(key, rec);
        } else {
            match rec {
                Some(r) => {
                    state.serve(KvRequest::Put(key, r));
                }
                None => {
                    state.serve(KvRequest::Delete(key));
                }
            }
        }
        Ok(())
    }

    /// Creates an empty node (like `write` with an empty value but failing
    /// with `EEXIST` semantics avoided: mkdir of an existing dir is a
    /// no-op, as in xenstored).
    pub fn mkdir(
        &mut self,
        state: &mut XenStoreState,
        dom: DomId,
        txn: Option<u32>,
        path: &XsPath,
    ) -> XsResult<()> {
        if self.txn_read(state, txn, path.as_str())?.is_some() {
            return Ok(());
        }
        self.write(state, dom, txn, path, b"")
    }

    /// Removes a node and its whole subtree.
    pub fn rm(
        &mut self,
        state: &mut XenStoreState,
        dom: DomId,
        txn: Option<u32>,
        path: &XsPath,
    ) -> XsResult<()> {
        self.requests_this_epoch += 1;
        let rec = self
            .txn_read(state, txn, path.as_str())?
            .ok_or_else(|| XsError::NoEnt(path.to_string()))?;
        if !self.can_write(dom, &rec) {
            return Err(XsError::Acc {
                caller: dom,
                path: path.to_string(),
            });
        }
        // Collect subtree keys from State plus transaction overlay.
        let mut keys: BTreeSet<String> =
            match state.serve(KvRequest::ListSubtree(path.as_str().to_string())) {
                KvReply::Keys(k) => k.into_iter().collect(),
                _ => BTreeSet::new(),
            };
        if let Some(id) = txn {
            let t = self.txns.get(&id).ok_or(XsError::BadTxn(id))?;
            for (k, v) in &t.writes {
                let kp = XsPath::parse(k).map_err(|_| XsError::Inval(k.clone()))?;
                if kp.starts_with(path) {
                    if v.is_some() {
                        keys.insert(k.clone());
                    } else {
                        keys.remove(k);
                    }
                }
            }
        }
        for key in keys {
            if let Some(rec) = self.txn_read(state, txn, &key)? {
                self.uncharge_node(rec.perms.owner);
            }
            self.apply_write(state, txn, key, None)?;
        }
        if txn.is_none() {
            self.watches.fire(path);
        }
        Ok(())
    }

    /// Lists the immediate children of a node.
    pub fn directory(
        &mut self,
        state: &mut XenStoreState,
        dom: DomId,
        txn: Option<u32>,
        path: &XsPath,
    ) -> XsResult<Vec<String>> {
        self.requests_this_epoch += 1;
        if path.as_str() != "/" {
            let rec = self
                .txn_read(state, txn, path.as_str())?
                .ok_or_else(|| XsError::NoEnt(path.to_string()))?;
            if !self.can_read(dom, &rec) {
                return Err(XsError::Acc {
                    caller: dom,
                    path: path.to_string(),
                });
            }
        }
        let mut keys: BTreeSet<String> =
            match state.serve(KvRequest::ListSubtree(path.as_str().to_string())) {
                KvReply::Keys(k) => k.into_iter().collect(),
                _ => BTreeSet::new(),
            };
        if let Some(id) = txn {
            let t = self.txns.get(&id).ok_or(XsError::BadTxn(id))?;
            for (k, v) in &t.writes {
                if v.is_some() {
                    keys.insert(k.clone());
                } else {
                    keys.remove(k);
                }
            }
        }
        let prefix = if path.as_str() == "/" {
            "/".to_string()
        } else {
            format!("{}/", path.as_str())
        };
        let mut children: Vec<String> = keys
            .iter()
            .filter(|k| k.starts_with(&prefix) && **k != *path.as_str())
            .filter(|k| !k.starts_with(WATCH_JOURNAL))
            .filter_map(|k| k[prefix.len()..].split('/').next().map(str::to_string))
            .collect();
        children.dedup();
        Ok(children)
    }

    /// Reads a node's permissions.
    pub fn get_perms(
        &mut self,
        state: &mut XenStoreState,
        dom: DomId,
        path: &XsPath,
    ) -> XsResult<NodePerms> {
        let rec = Self::get_record(state, path.as_str())
            .ok_or_else(|| XsError::NoEnt(path.to_string()))?;
        if !self.can_read(dom, &rec) {
            return Err(XsError::Acc {
                caller: dom,
                path: path.to_string(),
            });
        }
        Ok(rec.perms)
    }

    /// Replaces a node's permissions; only the owner or a privileged
    /// connection may do so.
    pub fn set_perms(
        &mut self,
        state: &mut XenStoreState,
        dom: DomId,
        path: &XsPath,
        perms: NodePerms,
    ) -> XsResult<()> {
        let mut rec = Self::get_record(state, path.as_str())
            .ok_or_else(|| XsError::NoEnt(path.to_string()))?;
        if rec.perms.owner != dom && !self.is_privileged(dom) {
            return Err(XsError::Acc {
                caller: dom,
                path: path.to_string(),
            });
        }
        let old_owner = rec.perms.owner;
        let new_owner = perms.owner;
        rec.perms = perms;
        state.serve(KvRequest::Put(path.as_str().to_string(), rec));
        if old_owner != new_owner {
            self.uncharge_node(old_owner);
            let _ = self.charge_node(new_owner);
        }
        self.watches.fire(path);
        Ok(())
    }

    // ----- watches -----

    /// Registers a watch and journals it into State so it survives Logic
    /// restarts. Fires the synthetic initial event.
    pub fn watch(
        &mut self,
        state: &mut XenStoreState,
        dom: DomId,
        path: &XsPath,
        token: &str,
    ) -> XsResult<()> {
        self.requests_this_epoch += 1;
        if !self.is_privileged(dom) && self.watches.count_for(dom) >= self.quotas.watches {
            return Err(XsError::Quota("watches"));
        }
        if !self.watches.register(dom, path.clone(), token.to_string()) {
            return Err(XsError::Exists(path.to_string()));
        }
        let key = format!("{WATCH_JOURNAL}/{}/{}", dom.0, sanitize_token(token));
        state.serve(KvRequest::Put(
            key,
            NodeRecord {
                value: format!("{}|{}|{}", dom.0, path.as_str(), token).into_bytes(),
                perms: NodePerms::owner_only(dom),
                generation: 0,
            },
        ));
        Ok(())
    }

    /// Unregisters a watch and removes its journal entry.
    pub fn unwatch(
        &mut self,
        state: &mut XenStoreState,
        dom: DomId,
        path: &XsPath,
        token: &str,
    ) -> XsResult<()> {
        if !self.watches.unregister(dom, path, token) {
            return Err(XsError::NoEnt(format!("watch {path}")));
        }
        let key = format!("{WATCH_JOURNAL}/{}/{}", dom.0, sanitize_token(token));
        state.serve(KvRequest::Delete(key));
        Ok(())
    }

    /// Dequeues the next watch event for `dom`.
    pub fn poll_watch(&mut self, dom: DomId) -> Option<WatchEvent> {
        self.watches.poll(dom)
    }

    // ----- transactions -----

    /// Starts a transaction.
    pub fn txn_start(&mut self, state: &mut XenStoreState, dom: DomId) -> XsResult<u32> {
        let open = self.txns.values().filter(|t| t.dom == dom).count();
        if !self.is_privileged(dom) && open >= self.quotas.transactions {
            return Err(XsError::Quota("transactions"));
        }
        let base = match state.serve(KvRequest::Generation) {
            KvReply::Generation(g) => g,
            _ => 0,
        };
        let id = self.next_txn;
        self.next_txn += 1;
        self.txns.insert(
            id,
            Txn {
                dom,
                base_generation: base,
                writes: BTreeMap::new(),
                reads: BTreeSet::new(),
            },
        );
        Ok(id)
    }

    /// Ends a transaction. With `commit == false` the overlay is simply
    /// discarded; with `commit == true` the overlay is applied atomically
    /// unless any key read or written has changed since the transaction
    /// started, in which case [`XsError::Again`] is returned and the
    /// caller retries (the classic XenStore EAGAIN loop).
    pub fn txn_end(
        &mut self,
        state: &mut XenStoreState,
        dom: DomId,
        id: u32,
        commit: bool,
    ) -> XsResult<()> {
        let txn = self.txns.remove(&id).ok_or(XsError::BadTxn(id))?;
        if txn.dom != dom {
            self.txns.insert(id, txn);
            return Err(XsError::Acc {
                caller: dom,
                path: format!("transaction {id}"),
            });
        }
        if !commit {
            return Ok(());
        }
        // Conflict detection: any touched key mutated after base?
        let touched: BTreeSet<&String> = txn.reads.iter().chain(txn.writes.keys()).collect();
        for key in touched {
            if let Some(rec) = Self::get_record(state, key) {
                if rec.generation > txn.base_generation {
                    return Err(XsError::Again);
                }
            }
        }
        // Apply and fire.
        for (key, rec) in txn.writes {
            match rec {
                Some(r) => {
                    state.serve(KvRequest::Put(key.clone(), r));
                }
                None => {
                    state.serve(KvRequest::Delete(key.clone()));
                }
            }
            if let Ok(p) = XsPath::parse(&key) {
                self.watches.fire(&p);
            }
        }
        Ok(())
    }

    /// Number of open transactions.
    pub fn open_txns(&self) -> usize {
        self.txns.len()
    }

    /// Requests processed since the last restart.
    pub fn requests_this_epoch(&self) -> u64 {
        self.requests_this_epoch
    }

    /// Drops every watch, pending event, and quota record of a domain.
    pub fn remove_domain(&mut self, state: &mut XenStoreState, dom: DomId) {
        self.watches.remove_domain(dom);
        self.txns.retain(|_, t| t.dom != dom);
        self.node_counts.remove(&dom);
        if let KvReply::Keys(keys) =
            state.serve(KvRequest::ListSubtree(format!("{WATCH_JOURNAL}/{}", dom.0)))
        {
            for key in keys {
                state.serve(KvRequest::Delete(key));
            }
        }
    }

    /// Current node count charged to `dom`.
    pub fn node_count(&self, dom: DomId) -> usize {
        self.node_counts.get(&dom).copied().unwrap_or(0)
    }
}

impl Default for XenStoreLogic {
    fn default() -> Self {
        Self::new()
    }
}

fn sanitize_token(token: &str) -> String {
    token
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Splits a `dom|path|token` journal value into borrowed pieces (the
/// caller decides what it needs to own — restart-path clone burndown).
fn parse_watch_journal(s: &str) -> Option<(DomId, &str, &str)> {
    let mut it = s.splitn(3, '|');
    let dom: u32 = it.next()?.parse().ok()?;
    let path = it.next()?;
    let token = it.next()?;
    Some((DomId(dom), path, token))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> XsPath {
        XsPath::parse(s).unwrap()
    }

    /// A Logic with dom0 privileged and a guest dom7, plus a State.
    fn setup() -> (XenStoreLogic, XenStoreState, DomId, DomId) {
        let mut logic = XenStoreLogic::new();
        let mut state = XenStoreState::new();
        let dom0 = DomId(0);
        let guest = DomId(7);
        logic.set_privileged(dom0, true);
        // Give the guest its home directory, as the toolstack does.
        logic
            .write(&mut state, dom0, None, &p("/local/domain/7"), b"")
            .unwrap();
        let mut perms = NodePerms::owner_only(guest);
        perms.owner = guest;
        logic
            .set_perms(&mut state, dom0, &p("/local/domain/7"), perms)
            .unwrap();
        (logic, state, dom0, guest)
    }

    #[test]
    fn read_write_with_permissions() {
        let (mut l, mut s, dom0, guest) = setup();
        l.write(
            &mut s,
            guest,
            None,
            &p("/local/domain/7/name"),
            b"web-frontend",
        )
        .unwrap();
        assert_eq!(
            l.read(&mut s, guest, None, &p("/local/domain/7/name"))
                .unwrap(),
            b"web-frontend"
        );
        // Privileged reads anything.
        assert_eq!(
            l.read(&mut s, dom0, None, &p("/local/domain/7/name"))
                .unwrap(),
            b"web-frontend"
        );
        // Another guest cannot.
        let other = DomId(9);
        assert!(matches!(
            l.read(&mut s, other, None, &p("/local/domain/7/name")),
            Err(XsError::Acc { .. })
        ));
    }

    #[test]
    fn guest_cannot_write_outside_its_home() {
        let (mut l, mut s, _dom0, guest) = setup();
        assert!(matches!(
            l.write(&mut s, guest, None, &p("/tool/secret"), b"x"),
            Err(XsError::Acc { .. })
        ));
        assert!(matches!(
            l.write(&mut s, guest, None, &p("/local/domain/8/evil"), b"x"),
            Err(XsError::Acc { .. })
        ));
    }

    #[test]
    fn missing_node_is_noent() {
        let (mut l, mut s, dom0, _) = setup();
        assert!(matches!(
            l.read(&mut s, dom0, None, &p("/nothing")),
            Err(XsError::NoEnt(_))
        ));
        assert!(matches!(
            l.rm(&mut s, dom0, None, &p("/nothing")),
            Err(XsError::NoEnt(_))
        ));
    }

    #[test]
    fn write_creates_ancestors_owned_by_writer() {
        let (mut l, mut s, _dom0, guest) = setup();
        l.write(
            &mut s,
            guest,
            None,
            &p("/local/domain/7/device/vif/0/mac"),
            b"00:16:3e",
        )
        .unwrap();
        let perms = l
            .get_perms(&mut s, guest, &p("/local/domain/7/device/vif"))
            .unwrap();
        assert_eq!(perms.owner, guest);
        // 4 new nodes: device, vif, 0, mac.
        assert_eq!(l.node_count(guest), 1 + 4, "home dir + four created nodes");
    }

    #[test]
    fn rm_removes_subtree_and_uncharges() {
        let (mut l, mut s, _dom0, guest) = setup();
        l.write(
            &mut s,
            guest,
            None,
            &p("/local/domain/7/device/vif/0/mac"),
            b"m",
        )
        .unwrap();
        let before = l.node_count(guest);
        l.rm(&mut s, guest, None, &p("/local/domain/7/device"))
            .unwrap();
        assert_eq!(l.node_count(guest), before - 4);
        assert!(matches!(
            l.read(&mut s, guest, None, &p("/local/domain/7/device/vif/0/mac")),
            Err(XsError::NoEnt(_))
        ));
    }

    #[test]
    fn directory_lists_immediate_children() {
        let (mut l, mut s, _dom0, guest) = setup();
        l.write(&mut s, guest, None, &p("/local/domain/7/device/vif/0"), b"")
            .unwrap();
        l.write(&mut s, guest, None, &p("/local/domain/7/device/vbd/0"), b"")
            .unwrap();
        l.write(&mut s, guest, None, &p("/local/domain/7/name"), b"n")
            .unwrap();
        let dir = l
            .directory(&mut s, guest, None, &p("/local/domain/7"))
            .unwrap();
        assert_eq!(dir, vec!["device", "name"]);
        let dir = l
            .directory(&mut s, guest, None, &p("/local/domain/7/device"))
            .unwrap();
        assert_eq!(dir, vec!["vbd", "vif"]);
    }

    #[test]
    fn node_quota_enforced() {
        let mut l = XenStoreLogic::with_quotas(Quotas {
            nodes: 5,
            ..Quotas::default()
        });
        let mut s = XenStoreState::new();
        let dom0 = DomId(0);
        let guest = DomId(7);
        l.set_privileged(dom0, true);
        l.write(&mut s, dom0, None, &p("/g"), b"").unwrap();
        let mut perms = NodePerms::owner_only(guest);
        perms.owner = guest;
        l.set_perms(&mut s, dom0, &p("/g"), perms).unwrap();
        for i in 0..4 {
            l.write(&mut s, guest, None, &p(&format!("/g/n{i}")), b"v")
                .unwrap();
        }
        assert!(matches!(
            l.write(&mut s, guest, None, &p("/g/n4"), b"v"),
            Err(XsError::Quota("nodes"))
        ));
        // Privileged connections are exempt (dom0 hosts the toolstack).
        l.write(&mut s, dom0, None, &p("/t/a/b/c/d/e/f"), b"v")
            .unwrap();
    }

    #[test]
    fn watch_fires_on_descendant_write() {
        let (mut l, mut s, dom0, guest) = setup();
        l.watch(&mut s, dom0, &p("/local/domain/7/device"), "backend-watch")
            .unwrap();
        let initial = l.poll_watch(dom0).unwrap();
        assert_eq!(initial.path, p("/local/domain/7/device"));
        l.write(
            &mut s,
            guest,
            None,
            &p("/local/domain/7/device/vif/0/state"),
            b"1",
        )
        .unwrap();
        let ev = l.poll_watch(dom0).unwrap();
        assert_eq!(ev.path, p("/local/domain/7/device/vif/0/state"));
        assert_eq!(ev.token, "backend-watch");
    }

    #[test]
    fn watch_quota_enforced() {
        let mut l = XenStoreLogic::with_quotas(Quotas {
            watches: 2,
            ..Quotas::default()
        });
        let mut s = XenStoreState::new();
        let g = DomId(7);
        l.watch(&mut s, g, &p("/a"), "1").unwrap();
        l.watch(&mut s, g, &p("/b"), "2").unwrap();
        assert!(matches!(
            l.watch(&mut s, g, &p("/c"), "3"),
            Err(XsError::Quota("watches"))
        ));
    }

    #[test]
    fn transaction_commit_applies_atomically() {
        let (mut l, mut s, dom0, _) = setup();
        let t = l.txn_start(&mut s, dom0).unwrap();
        l.write(&mut s, dom0, Some(t), &p("/tool/a"), b"1").unwrap();
        l.write(&mut s, dom0, Some(t), &p("/tool/b"), b"2").unwrap();
        // Not visible outside the transaction yet.
        assert!(matches!(
            l.read(&mut s, dom0, None, &p("/tool/a")),
            Err(XsError::NoEnt(_))
        ));
        // Visible inside.
        assert_eq!(l.read(&mut s, dom0, Some(t), &p("/tool/a")).unwrap(), b"1");
        l.txn_end(&mut s, dom0, t, true).unwrap();
        assert_eq!(l.read(&mut s, dom0, None, &p("/tool/a")).unwrap(), b"1");
        assert_eq!(l.read(&mut s, dom0, None, &p("/tool/b")).unwrap(), b"2");
    }

    #[test]
    fn transaction_abort_discards() {
        let (mut l, mut s, dom0, _) = setup();
        let t = l.txn_start(&mut s, dom0).unwrap();
        l.write(&mut s, dom0, Some(t), &p("/tool/a"), b"1").unwrap();
        l.txn_end(&mut s, dom0, t, false).unwrap();
        assert!(matches!(
            l.read(&mut s, dom0, None, &p("/tool/a")),
            Err(XsError::NoEnt(_))
        ));
    }

    #[test]
    fn conflicting_transaction_gets_eagain() {
        let (mut l, mut s, dom0, _) = setup();
        l.write(&mut s, dom0, None, &p("/tool/counter"), b"0")
            .unwrap();
        let t = l.txn_start(&mut s, dom0).unwrap();
        let v = l.read(&mut s, dom0, Some(t), &p("/tool/counter")).unwrap();
        assert_eq!(v, b"0");
        // A concurrent non-transactional write lands first.
        l.write(&mut s, dom0, None, &p("/tool/counter"), b"9")
            .unwrap();
        l.write(&mut s, dom0, Some(t), &p("/tool/counter"), b"1")
            .unwrap();
        assert!(matches!(
            l.txn_end(&mut s, dom0, t, true),
            Err(XsError::Again)
        ));
        // The concurrent write survives.
        assert_eq!(
            l.read(&mut s, dom0, None, &p("/tool/counter")).unwrap(),
            b"9"
        );
    }

    #[test]
    fn disjoint_transactions_do_not_conflict() {
        let (mut l, mut s, dom0, _) = setup();
        let t = l.txn_start(&mut s, dom0).unwrap();
        l.write(&mut s, dom0, Some(t), &p("/tool/a"), b"1").unwrap();
        // Unrelated write elsewhere.
        l.write(&mut s, dom0, None, &p("/other/key"), b"x").unwrap();
        assert!(l.txn_end(&mut s, dom0, t, true).is_ok());
    }

    #[test]
    fn txn_quota_enforced() {
        let mut l = XenStoreLogic::with_quotas(Quotas {
            transactions: 2,
            ..Quotas::default()
        });
        let mut s = XenStoreState::new();
        let g = DomId(7);
        let _t1 = l.txn_start(&mut s, g).unwrap();
        let _t2 = l.txn_start(&mut s, g).unwrap();
        assert!(matches!(l.txn_start(&mut s, g), Err(XsError::Quota(_))));
    }

    #[test]
    fn foreign_transaction_cannot_be_ended() {
        let (mut l, mut s, dom0, guest) = setup();
        let t = l.txn_start(&mut s, dom0).unwrap();
        assert!(matches!(
            l.txn_end(&mut s, guest, t, true),
            Err(XsError::Acc { .. })
        ));
        assert_eq!(l.open_txns(), 1, "transaction survives foreign end attempt");
    }

    #[test]
    fn restart_preserves_store_and_watches() {
        let (mut l, mut s, dom0, guest) = setup();
        l.write(&mut s, guest, None, &p("/local/domain/7/name"), b"v")
            .unwrap();
        l.watch(&mut s, dom0, &p("/local/domain/7"), "tok").unwrap();
        let _ = l.poll_watch(dom0);
        let t = l.txn_start(&mut s, dom0).unwrap();
        l.write(&mut s, dom0, Some(t), &p("/tool/pending"), b"x")
            .unwrap();

        // Microreboot Logic.
        l.restart(&mut s);

        // Durable data survives.
        assert_eq!(
            l.read(&mut s, guest, None, &p("/local/domain/7/name"))
                .unwrap(),
            b"v"
        );
        // Watches survive (journaled through State) and still fire.
        l.write(&mut s, guest, None, &p("/local/domain/7/state"), b"4")
            .unwrap();
        let ev = l.poll_watch(dom0).unwrap();
        assert_eq!(ev.token, "tok");
        // In-flight transactions are gone.
        assert!(matches!(
            l.txn_end(&mut s, dom0, t, true),
            Err(XsError::BadTxn(_))
        ));
        assert!(matches!(
            l.read(&mut s, dom0, None, &p("/tool/pending")),
            Err(XsError::NoEnt(_))
        ));
        // Quota accounting was rebuilt: home + name (pre-restart) + state
        // (written just above).
        assert_eq!(l.node_count(guest), 3);
        assert_eq!(l.restarts, 1);
    }

    #[test]
    fn remove_domain_cleans_everything() {
        let (mut l, mut s, _dom0, guest) = setup();
        l.watch(&mut s, guest, &p("/local/domain/7"), "t").unwrap();
        l.remove_domain(&mut s, guest);
        assert_eq!(l.node_count(guest), 0);
        assert!(l.poll_watch(guest).is_none());
        // Journal cleaned: restart does not resurrect the watch.
        l.restart(&mut s);
        l.write(&mut s, DomId(0), None, &p("/local/domain/7/x"), b"v")
            .unwrap();
        assert!(l.poll_watch(guest).is_none());
    }

    #[test]
    fn reserved_namespace_not_writable() {
        let (mut l, mut s, dom0, _) = setup();
        assert!(matches!(
            l.write(&mut s, dom0, None, &p("/@watch/evil"), b"x"),
            Err(XsError::Inval(_))
        ));
    }

    #[test]
    fn set_perms_requires_ownership() {
        let (mut l, mut s, _dom0, guest) = setup();
        l.write(&mut s, guest, None, &p("/local/domain/7/key"), b"v")
            .unwrap();
        let other = DomId(9);
        assert!(matches!(
            l.set_perms(
                &mut s,
                other,
                &p("/local/domain/7/key"),
                NodePerms::owner_only(other)
            ),
            Err(XsError::Acc { .. })
        ));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use xoar_sim::prop::Runner;

    fn p(s: &str) -> XsPath {
        XsPath::parse(s).unwrap()
    }

    /// Logic restart at any point between operations never loses
    /// committed writes.
    #[test]
    fn restart_never_loses_committed_data() {
        Runner::cases(64).run("restart never loses committed data", |g| {
            let ops = g.vec(1..40, |g| (g.u8(0..4), g.u32(0..8), g.u32(0..4)));
            let mut l = XenStoreLogic::new();
            let mut s = XenStoreState::new();
            let dom0 = DomId(0);
            l.set_privileged(dom0, true);
            let mut shadow: std::collections::BTreeMap<String, Vec<u8>> = Default::default();
            for (kind, key, val) in ops {
                let path = p(&format!("/k{key}"));
                match kind {
                    0 | 1 => {
                        let value = format!("v{val}").into_bytes();
                        l.write(&mut s, dom0, None, &path, &value).unwrap();
                        shadow.insert(path.as_str().to_string(), value);
                    }
                    2 => {
                        if shadow.remove(path.as_str()).is_some() {
                            l.rm(&mut s, dom0, None, &path).unwrap();
                        }
                    }
                    _ => {
                        l.restart(&mut s);
                    }
                }
            }
            l.restart(&mut s);
            for (key, value) in shadow {
                assert_eq!(l.read(&mut s, dom0, None, &p(&key)).unwrap(), value);
            }
        });
    }

    /// Quota accounting matches the real number of owned nodes after
    /// arbitrary writes and removals (no drift).
    #[test]
    fn quota_accounting_no_drift() {
        Runner::cases(64).run("quota accounting has no drift", |g| {
            let keys = g.vec(1..30, |g| g.u32(0..10));
            let mut l = XenStoreLogic::new();
            let mut s = XenStoreState::new();
            let dom0 = DomId(0);
            l.set_privileged(dom0, true);
            let mut present: std::collections::BTreeSet<u32> = Default::default();
            for k in keys {
                if present.contains(&k) {
                    l.rm(&mut s, dom0, None, &p(&format!("/n{k}"))).unwrap();
                    present.remove(&k);
                } else {
                    l.write(&mut s, dom0, None, &p(&format!("/n{k}")), b"v")
                        .unwrap();
                    present.insert(k);
                }
            }
            assert_eq!(l.node_count(dom0), present.len());
        });
    }
}
