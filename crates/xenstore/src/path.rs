//! XenStore path handling.
//!
//! Paths are `/`-separated, rooted strings such as
//! `/local/domain/5/device/vif/0/backend`. This module validates and
//! normalises them and provides the conventional locations used by the
//! toolstack and split drivers.

use crate::error::XsError;

/// Maximum length of a XenStore path in bytes (matches the C
/// implementation's `XENSTORE_ABS_PATH_MAX`).
pub const PATH_MAX: usize = 3072;

/// Maximum length of one path component.
pub const COMPONENT_MAX: usize = 256;

/// A validated, normalised, absolute XenStore path.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct XsPath(String);

impl XsPath {
    /// Parses and validates an absolute path.
    ///
    /// Rules (as in the C xenstored): must start with `/`, no empty
    /// components, no `.` or `..`, components drawn from a conservative
    /// character set, bounded total and per-component length.
    pub fn parse(raw: &str) -> Result<Self, XsError> {
        if raw.is_empty() || !raw.starts_with('/') {
            return Err(XsError::BadPath(raw.into()));
        }
        if raw.len() > PATH_MAX {
            return Err(XsError::BadPath(format!("{}… (too long)", &raw[..32])));
        }
        if raw == "/" {
            return Ok(XsPath("/".into()));
        }
        let trimmed = raw.strip_suffix('/').unwrap_or(raw);
        for comp in trimmed[1..].split('/') {
            if comp.is_empty() || comp == "." || comp == ".." {
                return Err(XsError::BadPath(raw.into()));
            }
            if comp.len() > COMPONENT_MAX {
                return Err(XsError::BadPath(raw.into()));
            }
            if !comp
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'@' | b':' | b'.'))
            {
                return Err(XsError::BadPath(raw.into()));
            }
        }
        Ok(XsPath(trimmed.to_string()))
    }

    /// The path as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The parent path, or `None` for the root.
    pub fn parent(&self) -> Option<XsPath> {
        if self.0 == "/" {
            return None;
        }
        match self.0.rfind('/') {
            Some(0) => Some(XsPath("/".into())),
            Some(i) => Some(XsPath(self.0[..i].to_string())),
            None => None,
        }
    }

    /// The final component, or `""` for the root.
    pub fn leaf(&self) -> &str {
        if self.0 == "/" {
            ""
        } else {
            self.0.rsplit('/').next().unwrap_or("")
        }
    }

    /// Appends a single component.
    pub fn child(&self, comp: &str) -> Result<XsPath, XsError> {
        let joined = if self.0 == "/" {
            format!("/{comp}")
        } else {
            format!("{}/{comp}", self.0)
        };
        XsPath::parse(&joined)
    }

    /// Whether `self` equals `other` or lies beneath it.
    pub fn starts_with(&self, other: &XsPath) -> bool {
        if other.0 == "/" {
            return true;
        }
        self.0 == other.0 || self.0.starts_with(&format!("{}/", other.0))
    }

    /// All ancestors from the root down to (excluding) `self`.
    pub fn ancestors(&self) -> Vec<XsPath> {
        let mut out = Vec::new();
        let mut cur = self.parent();
        while let Some(p) = cur {
            cur = p.parent();
            out.push(p);
        }
        out.reverse();
        out
    }

    /// The conventional per-domain home directory.
    pub fn domain_home(domid: u32) -> XsPath {
        XsPath(format!("/local/domain/{domid}"))
    }
}

impl std::fmt::Display for XsPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_valid_paths() {
        for p in [
            "/",
            "/local",
            "/local/domain/5/device/vif/0/backend",
            "/tool/xenstored",
            "/a-b_c.d@e:f",
        ] {
            assert!(XsPath::parse(p).is_ok(), "{p} should parse");
        }
    }

    #[test]
    fn rejects_invalid_paths() {
        for p in [
            "",
            "relative/path",
            "/double//slash",
            "/dot/./path",
            "/dotdot/../path",
            "/spaces not allowed",
            "/na\u{ef}ve",
        ] {
            assert!(XsPath::parse(p).is_err(), "{p} should be rejected");
        }
    }

    #[test]
    fn rejects_overlong() {
        let long = format!("/{}", "a".repeat(PATH_MAX));
        assert!(XsPath::parse(&long).is_err());
        let long_comp = format!("/{}", "a".repeat(COMPONENT_MAX + 1));
        assert!(XsPath::parse(&long_comp).is_err());
    }

    #[test]
    fn trailing_slash_normalised() {
        assert_eq!(
            XsPath::parse("/local/domain/").unwrap(),
            XsPath::parse("/local/domain").unwrap()
        );
    }

    #[test]
    fn parent_and_leaf() {
        let p = XsPath::parse("/local/domain/5").unwrap();
        assert_eq!(p.leaf(), "5");
        assert_eq!(p.parent().unwrap().as_str(), "/local/domain");
        assert_eq!(
            XsPath::parse("/local").unwrap().parent().unwrap().as_str(),
            "/"
        );
        assert!(XsPath::parse("/").unwrap().parent().is_none());
    }

    #[test]
    fn child_joins() {
        let p = XsPath::parse("/local").unwrap();
        assert_eq!(p.child("domain").unwrap().as_str(), "/local/domain");
        assert!(p.child("bad comp").is_err());
        let root = XsPath::parse("/").unwrap();
        assert_eq!(root.child("tool").unwrap().as_str(), "/tool");
    }

    #[test]
    fn starts_with_is_component_wise() {
        let a = XsPath::parse("/local/domain").unwrap();
        let b = XsPath::parse("/local/domain/5").unwrap();
        let c = XsPath::parse("/local/domainX").unwrap();
        assert!(b.starts_with(&a));
        assert!(a.starts_with(&a));
        assert!(
            !c.starts_with(&a),
            "prefix match must respect component boundaries"
        );
        assert!(a.starts_with(&XsPath::parse("/").unwrap()));
    }

    #[test]
    fn ancestors_in_order() {
        let p = XsPath::parse("/a/b/c").unwrap();
        let anc: Vec<String> = p
            .ancestors()
            .iter()
            .map(|a| a.as_str().to_string())
            .collect();
        assert_eq!(anc, vec!["/", "/a", "/a/b"]);
    }

    #[test]
    fn domain_home_convention() {
        assert_eq!(XsPath::domain_home(7).as_str(), "/local/domain/7");
    }
}
