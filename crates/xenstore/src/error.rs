//! XenStore error types.

use std::fmt;

use xoar_hypervisor::DomId;

/// Errors returned by XenStore operations, mirroring the errno strings the
/// C xenstored places in its reply payloads (`ENOENT`, `EACCES`, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XsError {
    /// Path does not exist.
    NoEnt(String),
    /// Caller lacks permission on the node.
    Acc {
        /// The requesting connection's domain.
        caller: DomId,
        /// The path refused.
        path: String,
    },
    /// Malformed path.
    BadPath(String),
    /// Transaction conflict: retry (EAGAIN).
    Again,
    /// Unknown transaction ID.
    BadTxn(u32),
    /// Per-domain quota exhausted.
    Quota(&'static str),
    /// Node already exists (mkdir of existing node is tolerated in real
    /// xenstore; this is used for watch duplication and similar cases).
    Exists(String),
    /// Malformed request at the protocol level.
    Inval(String),
    /// The store backend (XenStore-State) is unreachable.
    StateUnavailable,
}

impl fmt::Display for XsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XsError::NoEnt(p) => write!(f, "ENOENT: {p}"),
            XsError::Acc { caller, path } => write!(f, "EACCES: {caller} on {path}"),
            XsError::BadPath(p) => write!(f, "EINVAL: bad path {p}"),
            XsError::Again => write!(f, "EAGAIN: transaction conflict"),
            XsError::BadTxn(id) => write!(f, "EINVAL: unknown transaction {id}"),
            XsError::Quota(what) => write!(f, "E2BIG: quota exceeded ({what})"),
            XsError::Exists(p) => write!(f, "EEXIST: {p}"),
            XsError::Inval(s) => write!(f, "EINVAL: {s}"),
            XsError::StateUnavailable => write!(f, "EIO: XenStore-State unreachable"),
        }
    }
}

impl std::error::Error for XsError {}

/// Result alias for XenStore operations.
pub type XsResult<T> = Result<T, XsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_errno_convention() {
        assert!(XsError::NoEnt("/x".into())
            .to_string()
            .starts_with("ENOENT"));
        assert!(XsError::Again.to_string().starts_with("EAGAIN"));
        assert!(XsError::Quota("nodes").to_string().contains("nodes"));
    }
}
