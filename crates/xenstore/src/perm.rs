//! XenStore node permissions.
//!
//! Each node carries an owner and an ACL, exactly as in the C xenstored:
//! the first permission entry names the owner (who always has full
//! access), subsequent entries grant read/write/both to specific domains,
//! and a `None` entry for [`DomId`] 0…n acts as the default for domains
//! not listed. Privileged connections (Dom0 in stock Xen; the toolstack
//! shards in Xoar) bypass the ACL.

use xoar_hypervisor::DomId;

/// Access level granted by one ACL entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PermLevel {
    /// No access.
    None,
    /// Read only.
    Read,
    /// Write only.
    Write,
    /// Read and write.
    Both,
}

xoar_codec::impl_json_enum!(PermLevel {
    None,
    Read,
    Write,
    Both
});

impl PermLevel {
    /// Whether this level allows reading.
    pub fn can_read(self) -> bool {
        matches!(self, PermLevel::Read | PermLevel::Both)
    }

    /// Whether this level allows writing.
    pub fn can_write(self) -> bool {
        matches!(self, PermLevel::Write | PermLevel::Both)
    }
}

/// One ACL entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PermEntry {
    /// Domain the entry applies to.
    pub dom: DomId,
    /// Level granted.
    pub level: PermLevel,
}

xoar_codec::impl_json_struct!(PermEntry { dom, level });

/// The permissions of a node: owner plus ACL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodePerms {
    /// Owning domain; always has full access and may change the ACL.
    pub owner: DomId,
    /// Default level for domains with no specific entry.
    pub default: PermLevel,
    /// Specific entries.
    pub entries: Vec<PermEntry>,
}

xoar_codec::impl_json_struct!(NodePerms {
    owner,
    default,
    entries
});

impl NodePerms {
    /// Owner-only permissions (the default for new nodes).
    pub fn owner_only(owner: DomId) -> Self {
        NodePerms {
            owner,
            default: PermLevel::None,
            entries: Vec::new(),
        }
    }

    /// World-readable permissions (used for `/local/domain` listings).
    pub fn world_readable(owner: DomId) -> Self {
        NodePerms {
            owner,
            default: PermLevel::Read,
            entries: Vec::new(),
        }
    }

    /// Adds or replaces the entry for `dom`.
    pub fn set_entry(&mut self, dom: DomId, level: PermLevel) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.dom == dom) {
            e.level = level;
        } else {
            self.entries.push(PermEntry { dom, level });
        }
    }

    /// The effective level for `dom`.
    pub fn level_for(&self, dom: DomId) -> PermLevel {
        if dom == self.owner {
            return PermLevel::Both;
        }
        self.entries
            .iter()
            .find(|e| e.dom == dom)
            .map(|e| e.level)
            .unwrap_or(self.default)
    }

    /// Whether `dom` may read the node.
    pub fn can_read(&self, dom: DomId) -> bool {
        self.level_for(dom).can_read()
    }

    /// Whether `dom` may write the node.
    pub fn can_write(&self, dom: DomId) -> bool {
        self.level_for(dom).can_write()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_has_full_access() {
        let p = NodePerms::owner_only(DomId(5));
        assert!(p.can_read(DomId(5)));
        assert!(p.can_write(DomId(5)));
        assert!(!p.can_read(DomId(6)));
        assert!(!p.can_write(DomId(6)));
    }

    #[test]
    fn acl_entries_override_default() {
        let mut p = NodePerms::owner_only(DomId(0));
        p.set_entry(DomId(7), PermLevel::Read);
        assert!(p.can_read(DomId(7)));
        assert!(!p.can_write(DomId(7)));
        p.set_entry(DomId(7), PermLevel::Both);
        assert!(p.can_write(DomId(7)));
        assert_eq!(p.entries.len(), 1, "set_entry replaces, not duplicates");
    }

    #[test]
    fn world_readable_default() {
        let p = NodePerms::world_readable(DomId(0));
        assert!(p.can_read(DomId(42)));
        assert!(!p.can_write(DomId(42)));
    }

    #[test]
    fn write_only_level() {
        let mut p = NodePerms::owner_only(DomId(0));
        p.set_entry(DomId(3), PermLevel::Write);
        assert!(!p.can_read(DomId(3)));
        assert!(p.can_write(DomId(3)));
    }
}
