//! The XenStore wire protocol and the [`XenStore`] facade.
//!
//! Guests talk to XenStore over a shared I/O ring carrying framed
//! requests; [`Request`]/[`Response`] model that frame vocabulary, and
//! [`XenStore`] bundles a [`XenStoreLogic`] + [`XenStoreState`] pair into
//! the single service object the rest of the platform consumes.
//!
//! The facade is also where the Xoar restart policy hooks in: calling
//! [`XenStore::restart_logic`] microreboots the Logic half while the State
//! half (and therefore all durable data) survives — the split of §5.1.

use xoar_hypervisor::DomId;

use crate::error::{XsError, XsResult};
use crate::logic::{Quotas, XenStoreLogic};
use crate::path::XsPath;
use crate::perm::NodePerms;
use crate::state::XenStoreState;
use crate::watch::WatchEvent;

/// A framed XenStore request, as carried on the store ring.
#[derive(Debug, Clone)]
pub enum Request {
    /// Read a node's value.
    Read {
        /// Transaction, if any.
        txn: Option<u32>,
        /// Target path.
        path: String,
    },
    /// Write a node's value.
    Write {
        /// Transaction, if any.
        txn: Option<u32>,
        /// Target path.
        path: String,
        /// Value to store.
        value: Vec<u8>,
    },
    /// Create an empty node.
    Mkdir {
        /// Transaction, if any.
        txn: Option<u32>,
        /// Target path.
        path: String,
    },
    /// Remove a subtree.
    Rm {
        /// Transaction, if any.
        txn: Option<u32>,
        /// Target path.
        path: String,
    },
    /// List children.
    Directory {
        /// Transaction, if any.
        txn: Option<u32>,
        /// Target path.
        path: String,
    },
    /// Get node permissions.
    GetPerms {
        /// Target path.
        path: String,
    },
    /// Set node permissions.
    SetPerms {
        /// Target path.
        path: String,
        /// New permissions.
        perms: NodePerms,
    },
    /// Register a watch.
    Watch {
        /// Watched path.
        path: String,
        /// Opaque token.
        token: String,
    },
    /// Unregister a watch.
    Unwatch {
        /// Watched path.
        path: String,
        /// Opaque token.
        token: String,
    },
    /// Start a transaction.
    TxnStart,
    /// End a transaction.
    TxnEnd {
        /// Transaction ID.
        txn: u32,
        /// Commit (`true`) or abort (`false`).
        commit: bool,
    },
}

/// A framed XenStore response.
#[derive(Debug, Clone)]
pub enum Response {
    /// A value payload (Read).
    Value(Vec<u8>),
    /// A success acknowledgment.
    Ok,
    /// Directory listing.
    Dir(Vec<String>),
    /// Permissions payload.
    Perms(NodePerms),
    /// New transaction ID.
    Txn(u32),
    /// An error, carried as an errno-style string (as on the real wire).
    Err(String),
}

/// The assembled XenStore service: restartable Logic over durable State.
#[derive(Debug)]
pub struct XenStore {
    logic: XenStoreLogic,
    state: XenStoreState,
    /// Figure 5.1's most aggressive freshness policy: microreboot Logic
    /// before *every* wire request.
    per_request_restart: bool,
}

impl XenStore {
    /// Creates an empty store with default quotas.
    pub fn new() -> Self {
        XenStore {
            logic: XenStoreLogic::new(),
            state: XenStoreState::new(),
            per_request_restart: false,
        }
    }

    /// Creates a store with explicit quotas.
    pub fn with_quotas(quotas: Quotas) -> Self {
        XenStore {
            logic: XenStoreLogic::with_quotas(quotas),
            state: XenStoreState::new(),
            per_request_restart: false,
        }
    }

    /// Enables or disables the per-request restart policy (Figure 5.1:
    /// XenStore-Logic "restarted on each request"). An attacker that
    /// compromises Logic mid-request loses its foothold before the next
    /// request is even parsed.
    pub fn set_per_request_restart(&mut self, on: bool) {
        self.per_request_restart = on;
    }

    /// Marks a connection privileged (bypasses ACLs).
    pub fn set_privileged(&mut self, dom: DomId, privileged: bool) {
        self.logic.set_privileged(dom, privileged);
    }

    /// Microreboots the Logic half; State survives.
    pub fn restart_logic(&mut self) {
        self.logic.restart(&mut self.state);
    }

    /// Number of Logic restarts so far.
    pub fn logic_restarts(&self) -> u64 {
        self.logic.restarts
    }

    /// Handles one framed request from `dom`.
    pub fn handle(&mut self, dom: DomId, req: Request) -> Response {
        if self.per_request_restart {
            self.logic.restart(&mut self.state);
        }
        match self.dispatch(dom, req) {
            Ok(resp) => resp,
            Err(e) => Response::Err(e.to_string()),
        }
    }

    fn dispatch(&mut self, dom: DomId, req: Request) -> XsResult<Response> {
        match req {
            Request::Read { txn, path } => {
                let p = XsPath::parse(&path)?;
                Ok(Response::Value(self.logic.read(
                    &mut self.state,
                    dom,
                    txn,
                    &p,
                )?))
            }
            Request::Write { txn, path, value } => {
                let p = XsPath::parse(&path)?;
                self.logic.write(&mut self.state, dom, txn, &p, &value)?;
                Ok(Response::Ok)
            }
            Request::Mkdir { txn, path } => {
                let p = XsPath::parse(&path)?;
                self.logic.mkdir(&mut self.state, dom, txn, &p)?;
                Ok(Response::Ok)
            }
            Request::Rm { txn, path } => {
                let p = XsPath::parse(&path)?;
                self.logic.rm(&mut self.state, dom, txn, &p)?;
                Ok(Response::Ok)
            }
            Request::Directory { txn, path } => {
                let p = XsPath::parse(&path)?;
                Ok(Response::Dir(self.logic.directory(
                    &mut self.state,
                    dom,
                    txn,
                    &p,
                )?))
            }
            Request::GetPerms { path } => {
                let p = XsPath::parse(&path)?;
                Ok(Response::Perms(self.logic.get_perms(
                    &mut self.state,
                    dom,
                    &p,
                )?))
            }
            Request::SetPerms { path, perms } => {
                let p = XsPath::parse(&path)?;
                self.logic.set_perms(&mut self.state, dom, &p, perms)?;
                Ok(Response::Ok)
            }
            Request::Watch { path, token } => {
                let p = XsPath::parse(&path)?;
                self.logic.watch(&mut self.state, dom, &p, &token)?;
                Ok(Response::Ok)
            }
            Request::Unwatch { path, token } => {
                let p = XsPath::parse(&path)?;
                self.logic.unwatch(&mut self.state, dom, &p, &token)?;
                Ok(Response::Ok)
            }
            Request::TxnStart => Ok(Response::Txn(self.logic.txn_start(&mut self.state, dom)?)),
            Request::TxnEnd { txn, commit } => {
                self.logic.txn_end(&mut self.state, dom, txn, commit)?;
                Ok(Response::Ok)
            }
        }
    }

    // ----- direct convenience API (used by the platform crates) -----

    /// Reads a node as a UTF-8 string.
    pub fn read_str(&mut self, dom: DomId, path: &str) -> XsResult<String> {
        let p = XsPath::parse(path)?;
        let v = self.logic.read(&mut self.state, dom, None, &p)?;
        String::from_utf8(v).map_err(|_| XsError::Inval("non-utf8 value".into()))
    }

    /// Writes a string value.
    pub fn write_str(&mut self, dom: DomId, path: &str, value: &str) -> XsResult<()> {
        let p = XsPath::parse(path)?;
        self.logic
            .write(&mut self.state, dom, None, &p, value.as_bytes())
    }

    /// Removes a subtree.
    pub fn rm(&mut self, dom: DomId, path: &str) -> XsResult<()> {
        let p = XsPath::parse(path)?;
        self.logic.rm(&mut self.state, dom, None, &p)
    }

    /// Lists children.
    pub fn directory(&mut self, dom: DomId, path: &str) -> XsResult<Vec<String>> {
        let p = XsPath::parse(path)?;
        self.logic.directory(&mut self.state, dom, None, &p)
    }

    /// Registers a watch.
    pub fn watch(&mut self, dom: DomId, path: &str, token: &str) -> XsResult<()> {
        let p = XsPath::parse(path)?;
        self.logic.watch(&mut self.state, dom, &p, token)
    }

    /// Unregisters a watch.
    pub fn unwatch(&mut self, dom: DomId, path: &str, token: &str) -> XsResult<()> {
        let p = XsPath::parse(path)?;
        self.logic.unwatch(&mut self.state, dom, &p, token)
    }

    /// Dequeues the next watch event for `dom`.
    pub fn poll_watch(&mut self, dom: DomId) -> Option<WatchEvent> {
        self.logic.poll_watch(dom)
    }

    /// Sets node permissions.
    pub fn set_perms(&mut self, dom: DomId, path: &str, perms: NodePerms) -> XsResult<()> {
        let p = XsPath::parse(path)?;
        self.logic.set_perms(&mut self.state, dom, &p, perms)
    }

    /// Sets up the conventional home directory for a new domain, owned by
    /// that domain (performed by the toolstack during VM creation).
    pub fn create_domain_home(&mut self, actor: DomId, domid: DomId) -> XsResult<()> {
        let home = XsPath::domain_home(domid.0);
        self.logic.mkdir(&mut self.state, actor, None, &home)?;
        let mut perms = NodePerms::owner_only(domid);
        perms.owner = domid;
        self.logic.set_perms(&mut self.state, actor, &home, perms)
    }

    /// Removes a domain's connections, watches, quotas, and home dir.
    pub fn remove_domain(&mut self, actor: DomId, domid: DomId) -> XsResult<()> {
        let home = XsPath::domain_home(domid.0);
        self.logic.remove_domain(&mut self.state, domid);
        match self.logic.rm(&mut self.state, actor, None, &home) {
            Ok(()) | Err(XsError::NoEnt(_)) => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Size of the durable store (node records).
    pub fn state_len(&self) -> usize {
        self.state.len()
    }

    /// Narrow-protocol operations served by State so far.
    pub fn state_ops(&self) -> u64 {
        self.state.ops_served()
    }

    /// Read-only access to Logic (audit/analysis tooling).
    pub fn logic(&self) -> &XenStoreLogic {
        &self.logic
    }

    /// Direct access to Logic (tests, restart policies).
    pub fn logic_mut(&mut self) -> &mut XenStoreLogic {
        &mut self.logic
    }

    /// Direct access to State (tests, audit tooling).
    pub fn state(&self) -> &XenStoreState {
        &self.state
    }
}

impl Default for XenStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with_guest() -> (XenStore, DomId, DomId) {
        let mut xs = XenStore::new();
        let dom0 = DomId(0);
        let guest = DomId(5);
        xs.set_privileged(dom0, true);
        xs.create_domain_home(dom0, guest).unwrap();
        (xs, dom0, guest)
    }

    #[test]
    fn wire_round_trip() {
        let (mut xs, _dom0, guest) = store_with_guest();
        let resp = xs.handle(
            guest,
            Request::Write {
                txn: None,
                path: "/local/domain/5/name".into(),
                value: b"guest-a".to_vec(),
            },
        );
        assert!(matches!(resp, Response::Ok));
        match xs.handle(
            guest,
            Request::Read {
                txn: None,
                path: "/local/domain/5/name".into(),
            },
        ) {
            Response::Value(v) => assert_eq!(v, b"guest-a"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn wire_errors_are_errno_strings() {
        let (mut xs, _dom0, guest) = store_with_guest();
        match xs.handle(
            guest,
            Request::Read {
                txn: None,
                path: "/tool/private".into(),
            },
        ) {
            Response::Err(e) => assert!(e.starts_with("ENOENT"), "got {e}"),
            other => panic!("unexpected {other:?}"),
        }
        match xs.handle(
            guest,
            Request::Write {
                txn: None,
                path: "/tool/private".into(),
                value: vec![],
            },
        ) {
            Response::Err(e) => assert!(e.starts_with("EACCES"), "got {e}"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn wire_transactions() {
        let (mut xs, dom0, _) = store_with_guest();
        let t = match xs.handle(dom0, Request::TxnStart) {
            Response::Txn(t) => t,
            other => panic!("unexpected {other:?}"),
        };
        xs.handle(
            dom0,
            Request::Write {
                txn: Some(t),
                path: "/tool/x".into(),
                value: b"1".to_vec(),
            },
        );
        assert!(matches!(
            xs.handle(
                dom0,
                Request::TxnEnd {
                    txn: t,
                    commit: true
                }
            ),
            Response::Ok
        ));
        assert_eq!(xs.read_str(dom0, "/tool/x").unwrap(), "1");
    }

    #[test]
    fn facade_restart_preserves_data() {
        let (mut xs, dom0, guest) = store_with_guest();
        xs.write_str(guest, "/local/domain/5/vm", "uuid-1234")
            .unwrap();
        xs.watch(dom0, "/local/domain/5", "tok").unwrap();
        let _ = xs.poll_watch(dom0);
        xs.restart_logic();
        assert_eq!(
            xs.read_str(guest, "/local/domain/5/vm").unwrap(),
            "uuid-1234"
        );
        xs.write_str(guest, "/local/domain/5/state", "running")
            .unwrap();
        assert_eq!(xs.poll_watch(dom0).unwrap().token, "tok");
        assert_eq!(xs.logic_restarts(), 1);
    }

    #[test]
    fn domain_home_lifecycle() {
        let (mut xs, dom0, guest) = store_with_guest();
        xs.write_str(guest, "/local/domain/5/device/vif/0", "cfg")
            .unwrap();
        xs.remove_domain(dom0, guest).unwrap();
        assert!(xs.read_str(dom0, "/local/domain/5").is_err());
        // Idempotent.
        xs.remove_domain(dom0, guest).unwrap();
    }

    #[test]
    fn per_request_restart_policy() {
        let (mut xs, dom0, guest) = store_with_guest();
        xs.set_per_request_restart(true);
        // Every wire request lands on a freshly rebooted Logic, yet the
        // store behaves identically.
        for i in 0..5 {
            let resp = xs.handle(
                guest,
                Request::Write {
                    txn: None,
                    path: format!("/local/domain/5/data/k{i}"),
                    value: vec![b'v'],
                },
            );
            assert!(matches!(resp, Response::Ok), "write {i}");
        }
        assert_eq!(xs.logic_restarts(), 5);
        // Watches survive every one of those restarts.
        xs.set_per_request_restart(false);
        xs.watch(dom0, "/local/domain/5", "tok").unwrap();
        let _ = xs.poll_watch(dom0);
        xs.set_per_request_restart(true);
        let resp = xs.handle(
            guest,
            Request::Write {
                txn: None,
                path: "/local/domain/5/data/z".into(),
                value: vec![],
            },
        );
        assert!(matches!(resp, Response::Ok));
        assert_eq!(xs.poll_watch(dom0).unwrap().token, "tok");
    }

    #[test]
    fn state_ops_counter_moves() {
        let (mut xs, dom0, _) = store_with_guest();
        let before = xs.state_ops();
        xs.write_str(dom0, "/tool/k", "v").unwrap();
        assert!(xs.state_ops() > before);
    }
}

#[cfg(test)]
mod wire_fuzz {
    use super::*;
    use xoar_sim::prop::Gen;
    use xoar_sim::prop::Runner;

    fn any_path(g: &mut Gen) -> String {
        let fixed = [
            "/",
            "/local/domain/5/name",
            "/local/domain/5/device/vif/0",
            "/tool/secret",
            "relative/garbage",
            "/bad path/with spaces",
            "/@watch/injection",
        ];
        let pick = g.usize(0..fixed.len() + 1);
        if pick < fixed.len() {
            fixed[pick].to_string()
        } else {
            // Random lowercase-and-slash soup, like the old `[a-z/]{0,40}`.
            g.vec(0..40, |g| {
                let c = g.u8(0..27);
                if c == 26 {
                    '/'
                } else {
                    (b'a' + c) as char
                }
            })
            .into_iter()
            .collect()
        }
    }

    fn token(g: &mut Gen) -> String {
        g.vec(0..8, |g| (b'a' + g.u8(0..26)) as char)
            .into_iter()
            .collect()
    }

    fn txn(g: &mut Gen) -> Option<u32> {
        if g.bool() {
            Some(g.u32(0..5))
        } else {
            None
        }
    }

    fn any_request(g: &mut Gen) -> Request {
        match g.u8(0..9) {
            0 => Request::Read {
                txn: txn(g),
                path: any_path(g),
            },
            1 => Request::Write {
                txn: txn(g),
                path: any_path(g),
                value: g.vec(0..16, |g| g.u64(0..256) as u8),
            },
            2 => Request::Mkdir {
                txn: txn(g),
                path: any_path(g),
            },
            3 => Request::Rm {
                txn: txn(g),
                path: any_path(g),
            },
            4 => Request::Directory {
                txn: txn(g),
                path: any_path(g),
            },
            5 => Request::Watch {
                path: any_path(g),
                token: token(g),
            },
            6 => Request::Unwatch {
                path: any_path(g),
                token: token(g),
            },
            7 => Request::TxnStart,
            _ => Request::TxnEnd {
                txn: g.u32(0..5),
                commit: g.bool(),
            },
        }
    }

    /// An arbitrarily hostile wire stream from an unprivileged guest
    /// never panics the store, never touches privileged paths, and
    /// always yields a well-formed response.
    #[test]
    fn hostile_wire_stream_is_harmless() {
        Runner::cases(64).run("hostile wire stream is harmless", |g| {
            let reqs = g.vec(1..60, any_request);
            let restart_every = g.usize(1..10);
            let mut xs = XenStore::new();
            let dom0 = DomId(0);
            let guest = DomId(5);
            xs.set_privileged(dom0, true);
            xs.create_domain_home(dom0, guest).unwrap();
            xs.write_str(dom0, "/tool/secret", "crown jewels").unwrap();
            for (i, req) in reqs.into_iter().enumerate() {
                let _resp = xs.handle(guest, req);
                if i % restart_every == 0 {
                    xs.restart_logic();
                }
            }
            // The privileged subtree is intact and unreadable to the guest.
            assert_eq!(xs.read_str(dom0, "/tool/secret").unwrap(), "crown jewels");
            assert!(xs.read_str(guest, "/tool/secret").is_err());
        });
    }
}
