//! XenStore watches: the notification mechanism split drivers rely on.
//!
//! A connection registers a watch on a path with an opaque token; any
//! modification to that path *or any node beneath it* queues a watch event
//! `(fired_path, token)` for the connection. Registration also fires one
//! synthetic event immediately, which is how real guests avoid the race
//! between checking a key and watching it.

use std::collections::VecDeque;

use xoar_hypervisor::DomId;

use crate::path::XsPath;

/// One registered watch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Watch {
    /// Watching domain.
    pub dom: DomId,
    /// Watched path (fires for this path and descendants).
    pub path: XsPath,
    /// Opaque token returned with every event.
    pub token: String,
}

/// A queued watch event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchEvent {
    /// Domain to deliver to.
    pub dom: DomId,
    /// The path that changed (the *modified* path, not the watch root).
    pub path: XsPath,
    /// The registering token.
    pub token: String,
}

/// The watch registry and pending-event queue.
#[derive(Debug, Default)]
pub struct WatchRegistry {
    watches: Vec<Watch>,
    pending: VecDeque<WatchEvent>,
    fired: u64,
}

impl WatchRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a watch and queues the initial synthetic event.
    ///
    /// Duplicate `(dom, path, token)` triples are rejected, matching the
    /// C implementation's `EEXIST`.
    pub fn register(&mut self, dom: DomId, path: XsPath, token: String) -> bool {
        if self
            .watches
            .iter()
            .any(|w| w.dom == dom && w.path == path && w.token == token)
        {
            return false;
        }
        self.pending.push_back(WatchEvent {
            dom,
            path: path.clone(),
            token: token.clone(),
        });
        self.fired += 1;
        self.watches.push(Watch { dom, path, token });
        true
    }

    /// Re-registers a watch recovered from the State journal: no
    /// synthetic initial event is queued (the watcher already received
    /// one when it registered in a previous Logic epoch) and no fire is
    /// counted. Duplicates are still rejected.
    pub fn register_recovered(&mut self, dom: DomId, path: XsPath, token: String) -> bool {
        if self
            .watches
            .iter()
            .any(|w| w.dom == dom && w.path == path && w.token == token)
        {
            return false;
        }
        self.watches.push(Watch { dom, path, token });
        true
    }

    /// Drops every registration, pending event, and the fired counter,
    /// keeping the allocations (Logic microreboot support: the registry
    /// is rebuilt from the State journal without reallocating).
    pub fn clear(&mut self) {
        self.watches.clear();
        self.pending.clear();
        self.fired = 0;
    }

    /// Removes a watch. Returns whether one was removed.
    pub fn unregister(&mut self, dom: DomId, path: &XsPath, token: &str) -> bool {
        let before = self.watches.len();
        self.watches
            .retain(|w| !(w.dom == dom && &w.path == path && w.token == token));
        self.watches.len() != before
    }

    /// Fires all watches covering `modified`, queueing one event per match.
    pub fn fire(&mut self, modified: &XsPath) -> usize {
        let mut n = 0;
        for w in &self.watches {
            if modified.starts_with(&w.path) {
                self.pending.push_back(WatchEvent {
                    dom: w.dom,
                    path: modified.clone(),
                    token: w.token.clone(),
                });
                n += 1;
            }
        }
        self.fired += n as u64;
        n
    }

    /// Dequeues the next pending event for `dom`.
    pub fn poll(&mut self, dom: DomId) -> Option<WatchEvent> {
        let idx = self.pending.iter().position(|e| e.dom == dom)?;
        self.pending.remove(idx)
    }

    /// Number of watches registered by `dom`.
    pub fn count_for(&self, dom: DomId) -> usize {
        self.watches.iter().filter(|w| w.dom == dom).count()
    }

    /// Drops all watches and pending events of `dom` (domain death).
    pub fn remove_domain(&mut self, dom: DomId) {
        self.watches.retain(|w| w.dom != dom);
        self.pending.retain(|e| e.dom != dom);
    }

    /// Total events ever fired (evaluation counter).
    pub fn fired_count(&self) -> u64 {
        self.fired
    }

    /// Total watches registered right now.
    pub fn len(&self) -> usize {
        self.watches.len()
    }

    /// Whether no watches are registered.
    pub fn is_empty(&self) -> bool {
        self.watches.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> XsPath {
        XsPath::parse(s).unwrap()
    }

    #[test]
    fn registration_fires_synthetic_event() {
        let mut r = WatchRegistry::new();
        assert!(r.register(DomId(1), p("/local"), "tok".into()));
        let e = r.poll(DomId(1)).unwrap();
        assert_eq!(e.path, p("/local"));
        assert_eq!(e.token, "tok");
        assert!(r.poll(DomId(1)).is_none());
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut r = WatchRegistry::new();
        assert!(r.register(DomId(1), p("/a"), "t".into()));
        assert!(!r.register(DomId(1), p("/a"), "t".into()));
        // Same path, different token: fine.
        assert!(r.register(DomId(1), p("/a"), "t2".into()));
    }

    #[test]
    fn fire_covers_descendants() {
        let mut r = WatchRegistry::new();
        r.register(DomId(1), p("/local/domain/1/device"), "dev".into());
        let _ = r.poll(DomId(1)); // Drain synthetic.
        let n = r.fire(&p("/local/domain/1/device/vif/0/state"));
        assert_eq!(n, 1);
        let e = r.poll(DomId(1)).unwrap();
        assert_eq!(e.path, p("/local/domain/1/device/vif/0/state"));
        assert_eq!(e.token, "dev");
    }

    #[test]
    fn fire_does_not_cover_siblings_or_ancestors() {
        let mut r = WatchRegistry::new();
        r.register(DomId(1), p("/a/b"), "t".into());
        let _ = r.poll(DomId(1));
        assert_eq!(r.fire(&p("/a/c")), 0);
        assert_eq!(
            r.fire(&p("/a")),
            0,
            "ancestor change does not fire child watch"
        );
        assert_eq!(r.fire(&p("/a/bb")), 0, "component boundary respected");
    }

    #[test]
    fn multiple_watchers_all_fire() {
        let mut r = WatchRegistry::new();
        r.register(DomId(1), p("/a"), "t1".into());
        r.register(DomId(2), p("/a"), "t2".into());
        r.register(DomId(2), p("/"), "root".into());
        let _ = r.poll(DomId(1));
        let _ = r.poll(DomId(2));
        let _ = r.poll(DomId(2));
        assert_eq!(r.fire(&p("/a/x")), 3);
        assert!(r.poll(DomId(1)).is_some());
        assert_eq!(r.count_for(DomId(2)), 2);
    }

    #[test]
    fn unregister_stops_events() {
        let mut r = WatchRegistry::new();
        r.register(DomId(1), p("/a"), "t".into());
        let _ = r.poll(DomId(1));
        assert!(r.unregister(DomId(1), &p("/a"), "t"));
        assert!(!r.unregister(DomId(1), &p("/a"), "t"));
        assert_eq!(r.fire(&p("/a/x")), 0);
    }

    #[test]
    fn remove_domain_clears_watches_and_pending() {
        let mut r = WatchRegistry::new();
        r.register(DomId(1), p("/a"), "t".into());
        r.register(DomId(2), p("/a"), "t".into());
        r.remove_domain(DomId(1));
        assert!(r.poll(DomId(1)).is_none());
        assert_eq!(r.len(), 1);
        assert_eq!(r.fire(&p("/a/x")), 1);
    }

    #[test]
    fn poll_is_per_domain_fifo() {
        let mut r = WatchRegistry::new();
        r.register(DomId(1), p("/a"), "t".into());
        r.register(DomId(2), p("/a"), "u".into());
        let _ = r.poll(DomId(1));
        let _ = r.poll(DomId(2));
        r.fire(&p("/a/1"));
        r.fire(&p("/a/2"));
        let e1 = r.poll(DomId(1)).unwrap();
        let e2 = r.poll(DomId(1)).unwrap();
        assert_eq!(e1.path, p("/a/1"));
        assert_eq!(e2.path, p("/a/2"));
        assert_eq!(r.poll(DomId(2)).unwrap().path, p("/a/1"));
    }
}
