#!/usr/bin/env bash
# Tier-1 verification: offline build + full test suite.
#
# The workspace is self-contained (no external crates), so everything
# must pass with an empty/cold cargo registry. Run from the repo root:
#
#   ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --workspace --offline

# Bench gate: run the deterministic harnesses and keep their
# machine-readable tails (the harness prints one JSON document as the
# last stdout line) as committed perf baselines at the repo root. Each
# fresh run is compared against the committed baseline BEFORE it
# replaces it: bench-gate fails on any hot-path entry whose median
# regressed by more than 2x, and on any restart-path entry whose p95
# tail exceeds 6x its own median.
fresh_microbench="$(mktemp)"
fresh_ablation="$(mktemp)"
trap 'rm -f "$fresh_microbench" "$fresh_ablation"' EXIT
cargo bench --offline -p xoar-bench --bench microbench | tail -n 1 > "$fresh_microbench"
cargo run --release --offline -p xoar-bench --bin bench_gate -- \
    BENCH_microbench.json "$fresh_microbench"
mv "$fresh_microbench" BENCH_microbench.json
cargo bench --offline -p xoar-bench --bench ablation | tail -n 1 > "$fresh_ablation"
cargo run --release --offline -p xoar-bench --bin bench_gate -- \
    --set=ablation BENCH_ablation.json "$fresh_ablation"
mv "$fresh_ablation" BENCH_ablation.json
trap - EXIT
echo "bench baselines written: BENCH_microbench.json BENCH_ablation.json"

# Analysis gate: Pass A (model-level privilege-flow audit over the
# traced reference scenario — including the declared-cross-region-ops
# ledger check — plus the selftest proving the rules fire on injected
# violations) and Pass B (token-level boundary/no-panic/region-isolation/
# dispatch lint over crates/*/src; the allowlist is empty by default and
# any stale entry fails the lint). Each exits nonzero on any violation
# or un-allowlisted finding.
cargo run --release --offline -p xoar-analysis --bin xoar-analyzer
cargo run --release --offline -p xoar-analysis --bin xoar-analyzer -- --selftest
cargo run --release --offline -p xoar-analysis --bin xoar-lint

# Spec gate: the executable isolation spec run in lockstep with the
# hypervisor. --spec-exhaustive enumerates every small-scope op
# sequence (plus a randomized longer sweep) and fails on any divergence
# between the real state and the memory-ownership model;
# --spec-selftest injects three known violations (revoked-grant
# resurrection, backdoor clone fall-through, raw frame alias) and fails
# unless each fires its rule with a shrunk counterexample trace.
cargo run --release --offline -p xoar-analysis --bin xoar-analyzer -- --spec-exhaustive
cargo run --release --offline -p xoar-analysis --bin xoar-analyzer -- --spec-selftest

# Serverless-density smoke: stamp 1k/10k/100k snapshot-fork clones from
# one template and check the fleet stays ≥10x denser than built guests
# (EXPERIMENTS.md's memory-density table). Release mode only — the 100k
# row stamps a hundred thousand domains.
cargo test -q --release --offline -p xoar-sim -- --ignored density_sweep_smoke --nocapture

# Front-tier smoke: 100k concurrent fabric flows riding NetBack
# microreboots at three restart intervals (EXPERIMENTS.md's front-tier
# table). Asserts every flow recovers through the TCP model and that
# restart counts agree across engine, hypervisor, and audit log.
cargo test -q --release --offline -p xoar-sim -- --ignored fronttier_smoke --nocapture

# Style gate, only where a rustfmt toolchain is present.
if command -v rustfmt >/dev/null 2>&1; then
    cargo fmt --check
else
    echo "rustfmt not installed; skipping format check"
fi

echo "ci.sh: all checks passed"
