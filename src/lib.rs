//! # xoar
//!
//! The facade crate of the Xoar reproduction (SOSP 2011, *"Breaking Up
//! is Hard to Do: Security and Functionality in a Commodity
//! Hypervisor"*): one `use` pulls in the whole public API.
//!
//! * [`codec`] — the zero-dependency JSON codec behind the audit log's
//!   wire format and XenStore-State persistence;
//! * [`hypervisor`] — the Xen-like machine monitor substrate;
//! * [`xenstore`] — the split (Logic/State) XenStore registry;
//! * [`devices`] — I/O rings, split drivers, PCI, device emulation;
//! * [`platform`] — the assembled platforms, shards, builder, restarts,
//!   audit, migration (re-export of `xoar_core`);
//! * [`sim`] — deterministic workloads reproducing Chapter 6;
//! * [`security`] — the §6.2 census, containment, and TCB analyses.
//!
//! # Examples
//!
//! ```
//! use xoar::platform::platform::{GuestConfig, Platform, XoarConfig};
//!
//! let mut p = Platform::xoar(XoarConfig::default());
//! let ts = p.services.toolstacks[0];
//! let guest = p
//!     .create_guest(ts, GuestConfig::evaluation_guest("demo"))
//!     .unwrap();
//! assert!(p.guest(guest).is_some());
//! ```

#![warn(missing_docs)]

pub use xoar_codec as codec;
pub use xoar_core as platform;
pub use xoar_devices as devices;
pub use xoar_hypervisor as hypervisor;
pub use xoar_security as security;
pub use xoar_sim as sim;
pub use xoar_xenstore as xenstore;
