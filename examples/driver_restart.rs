//! Microrebooting a driver domain under live traffic (§3.3, Figure 6.3).
//!
//! ```sh
//! cargo run --example driver_restart --release
//! ```
//!
//! Streams a 2 GB transfer through NetBack while microrebooting it at
//! several intervals, on both the slow (full renegotiation) and fast
//! (recovery box) paths, and prints the throughput curve — a miniature
//! Figure 6.3. Also demonstrates in-place driver *upgrade*: restart into
//! a new release with the audit log recording the change.

use xoar_core::audit::AuditEvent;
use xoar_core::platform::{GuestConfig, Platform, XoarConfig};
use xoar_core::restart::{RestartEngine, RestartPath, RestartPolicy};
use xoar_hypervisor::DomId;
use xoar_sim::workloads::restart_sweep;

const GB2: u64 = 2 << 30;
const SEC: u64 = 1_000_000_000;

fn factory() -> (Platform, DomId) {
    let mut p = Platform::xoar(XoarConfig::default());
    let ts = p.services.toolstacks[0];
    let g = p
        .create_guest(ts, GuestConfig::evaluation_guest("streamer"))
        .expect("guest");
    (p, g)
}

fn main() {
    let baseline = restart_sweep::baseline_mbps(GB2);
    println!("2 GB transfer, no restarts: {baseline:.1} MB/s\n");
    println!("interval | slow path | fast path");
    for interval_s in [1u64, 2, 5, 10] {
        let (mut ps, gs) = factory();
        let slow = restart_sweep::run_point(&mut ps, gs, GB2, interval_s, RestartPath::Slow);
        let (mut pf, gf) = factory();
        let fast = restart_sweep::run_point(&mut pf, gf, GB2, interval_s, RestartPath::Fast);
        println!(
            "{interval_s:>7}s | {:>6.1} MB/s | {:>6.1} MB/s",
            slow.throughput_mbps, fast.throughput_mbps
        );
    }

    // In-place driver upgrade (§6.2): shut the old NetBack down
    // gracefully, bring up the patched release, renegotiate — the same
    // machinery as a microreboot, with an audit record.
    let (mut p, _g) = factory();
    let nb = p.services.netbacks[0];
    let mut engine = RestartEngine::new();
    engine
        .register(&mut p, nb, RestartPolicy::Never, RestartPath::Slow)
        .expect("register");
    let outcome = engine.restart(&mut p, nb).expect("upgrade restart");
    let now = p.now_ns();
    p.audit.append(
        now,
        AuditEvent::ShardUpgraded {
            shard: nb,
            release: "netback-2.6.32-patched".into(),
        },
    );
    println!(
        "\nIn-place upgrade of {nb}: {:.0} ms downtime, no guest disturbed \
         ({} domains still running).",
        outcome.downtime_ns as f64 / 1e6,
        p.hv.domain_count()
    );
    println!(
        "Post-upgrade, restarts every 30 s keep the window of exposure for \
         any newly-discovered vulnerability under {:.0} s.",
        30 * SEC / SEC
    );
}
