//! Public-cloud deployment (§3.4.1): dense multi-tenancy with constraint
//! groups, microreboots, and forensic audit.
//!
//! ```sh
//! cargo run --example public_cloud
//! ```
//!
//! Simulates an AWS-style host: one administrative toolstack packs VMs
//! from mutually untrusting customers onto shared shards, customers tag
//! their VMs with `constrain_group` to bound exposure, NetBack is
//! microrebooted on a timer to shrink the temporal attack surface, and —
//! after a (simulated) compromise is detected — the audit log answers
//! "which customers do we have to notify?".

use xoar_core::audit::AuditEvent;
use xoar_core::platform::{GuestConfig, Platform, XoarConfig};
use xoar_core::restart::{RestartEngine, RestartPath, RestartPolicy};
use xoar_core::shard::ConstraintTag;

const SEC: u64 = 1_000_000_000;

fn main() {
    let mut platform = Platform::xoar(XoarConfig::default());
    let toolstack = platform.services.toolstacks[0];

    // Customer A runs an Internet-exposed fleet, no special constraints.
    let mut fleet = Vec::new();
    for i in 0..4 {
        platform.advance_time(SEC);
        let g = platform
            .create_guest(
                toolstack,
                GuestConfig::evaluation_guest(&format!("cust-a-web-{i}")),
            )
            .expect("guest");
        fleet.push(g);
    }
    println!(
        "Customer A: {} untagged guests sharing NetBack/BlkBack",
        fleet.len()
    );

    // Customer B demands isolation: constrain_group means their VM will
    // only share shards with same-tagged VMs. On this single-NIC testbed
    // the shards are already adopted by the untagged group, so creation
    // fails rather than forcing unwanted sharing (§3.2.1).
    let mut cfg = GuestConfig::evaluation_guest("cust-b-db");
    cfg.constraint = ConstraintTag::group("customer-b");
    match platform.create_guest(toolstack, cfg) {
        Err(e) => println!("\nCustomer B placement refused (as designed): {e}"),
        Ok(_) => unreachable!("constraint groups must refuse mixed sharing"),
    }

    // Shrink the temporal attack surface: NetBack restarts every 10 s.
    let netback = platform.services.netbacks[0];
    let mut engine = RestartEngine::new();
    engine
        .register(
            &mut platform,
            netback,
            RestartPolicy::Timer {
                interval_ns: 10 * SEC,
            },
            RestartPath::Fast,
        )
        .expect("register");
    for _ in 0..6 {
        platform.advance_time(10 * SEC);
        for shard in engine.due(platform.now_ns()) {
            let o = engine.restart(&mut platform, shard).expect("restart");
            println!(
                "t={:>3}s microreboot {shard}: downtime {:.0} ms",
                platform.now_ns() / SEC,
                o.downtime_ns as f64 / 1e6
            );
        }
    }

    // A compromise of NetBack is detected at t=70s, believed to have
    // begun at t=45s. The last restart before t=45s bounds the window.
    platform.advance_time(5 * SEC);
    let now = platform.now_ns();
    platform
        .audit
        .append(now, AuditEvent::CompromiseDetected { dom: netback });
    let exposed = platform.audit.guests_exposed_to(netback, 45 * SEC, now);
    println!(
        "\nForensics: compromise window [45s, {}s]; guests to notify: {:?}",
        now / SEC,
        exposed
    );
    assert_eq!(exposed.len(), fleet.len(), "all of customer A was exposed");

    // Thanks to the restarts, the attacker's *execution* window within
    // the compromise never exceeded one restart interval.
    println!(
        "NetBack was microrebooted {} times; max attacker dwell time ≈ 10 s",
        platform.audit.restart_count(netback)
    );
}
