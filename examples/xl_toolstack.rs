//! An `xl`-flavoured management session: the Toolstack facade, resource
//! quotas, and live migration between two hosts.
//!
//! ```sh
//! cargo run --example xl_toolstack
//! ```

use xoar_core::migration::{migrate, MigrationConfig};
use xoar_core::platform::{GuestConfig, Platform, XoarConfig};
use xoar_core::toolstack::{ResourceQuota, Toolstack};

fn main() {
    // Two Xoar hosts in a small private cloud.
    let mut host_a = Platform::xoar(XoarConfig::default());
    let mut host_b = Platform::xoar(XoarConfig::default());

    // The team's toolstack on host A, with a private-cloud quota.
    let mut ts_a = Toolstack::new(&host_a, 0).with_quota(ResourceQuota {
        max_vms: 4,
        max_memory_mib: 3 * 1024,
        max_disk_bytes: 64 << 30,
    });

    // xl create ×2.
    let web = ts_a
        .create(&mut host_a, GuestConfig::evaluation_guest("web"))
        .unwrap();
    let db = ts_a
        .create(&mut host_a, GuestConfig::evaluation_guest("db"))
        .unwrap();

    // xl list.
    println!("host A> xl list");
    println!(
        "{:<6} {:<8} {:<10} {:>8} {:>6}",
        "dom", "name", "state", "mem", "vcpus"
    );
    for vm in ts_a.list(&host_a) {
        println!(
            "{:<6} {:<8} {:<10} {:>5}MiB {:>6}",
            vm.dom.to_string(),
            vm.name,
            format!("{:?}", vm.state),
            vm.memory_mib,
            vm.vcpus
        );
    }

    // xl mem-set: grows within quota, refused past it.
    println!("\nhost A> xl mem-set web 2048");
    match ts_a.set_memory(&mut host_a, web, 2048) {
        Ok(()) => println!("ok (quota used: {} MiB)", ts_a.used_memory_mib()),
        Err(e) => println!("refused: {e}"),
    }
    println!("host A> xl mem-set db 4096");
    match ts_a.set_memory(&mut host_a, db, 4096) {
        Ok(()) => println!("ok"),
        Err(e) => println!("refused: {e} (the platform enforces the slice)"),
    }

    // xl create beyond the disk quota.
    println!("\nhost A> xl create cache (15 GiB disk)");
    match ts_a.create(&mut host_a, GuestConfig::evaluation_guest("cache")) {
        Ok(_) => println!("ok"),
        Err(e) => println!("refused: {e}"),
    }

    // xl migrate db host-b.
    println!("\nhost A> xl migrate db host-b");
    // Write some state the migration must carry.
    host_a
        .hv
        .mem
        .write(db, xoar_hypervisor::memory::Pfn(42), b"customers-table")
        .unwrap();
    let ts_b_dom = host_b.services.toolstacks[0];
    let report = migrate(
        &mut host_a,
        &mut host_b,
        db,
        ts_b_dom,
        MigrationConfig::default(),
        |_, _| {},
    )
    .unwrap();
    println!(
        "migrated: {} pre-copy round(s), {} pages total, {} in stop-and-copy, downtime {:.2} ms",
        report.rounds,
        report.pages_total,
        report.pages_final,
        report.downtime_ns as f64 / 1e6
    );
    let carried = host_b
        .hv
        .mem
        .read(report.new_dom, xoar_hypervisor::memory::Pfn(42))
        .unwrap();
    println!("state on host B: {:?}", String::from_utf8_lossy(&carried));

    // Final state of both hosts.
    println!("\nhost A> xl list");
    for vm in ts_a.list(&host_a) {
        println!("  {} {}", vm.dom, vm.name);
    }
    let ts_b = Toolstack::new(&host_b, 0);
    println!("host B> xl list");
    for vm in ts_b.list(&host_b) {
        println!("  {} {}", vm.dom, vm.name);
    }
    // Both audit chains are intact and record the move.
    assert_eq!(host_a.audit.verify_chain(), Ok(()));
    assert_eq!(host_b.audit.verify_chain(), Ok(()));
    println!("\naudit chains verified on both hosts.");
}
