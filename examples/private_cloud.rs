//! Private-cloud resource partitioning (§3.4.2): per-user toolstacks with
//! delegated shards.
//!
//! ```sh
//! cargo run --example private_cloud
//! ```
//!
//! "Each user of a system is assigned their own administrative toolstack
//! and is able to manage both their own hosted VMs and the shards that
//! support them." This example boots Xoar with two toolstacks, gives each
//! team its own slice, and demonstrates that the hypervisor refuses
//! cross-team management: a toolstack "can only manage these VMs, and an
//! attempt to manage any other guests is blocked by the hypervisor."

use xoar_core::platform::{GuestConfig, Platform, XoarConfig};
use xoar_hypervisor::{HvError, Hypercall};

fn main() {
    // Two per-team toolstacks; the boot process delegates the driver
    // shards to both (coarse-grained sharing of the single testbed NIC).
    let mut platform = Platform::xoar(XoarConfig {
        toolstacks: 2,
        ..Default::default()
    });
    let team_red = platform.services.toolstacks[0];
    let team_blue = platform.services.toolstacks[1];
    println!("Team red toolstack:  {team_red}");
    println!("Team blue toolstack: {team_blue}");

    // Each team manages its own fleet.
    let red_vm = platform
        .create_guest(team_red, GuestConfig::evaluation_guest("red-ci-runner"))
        .expect("red guest");
    let blue_vm = platform
        .create_guest(team_blue, GuestConfig::evaluation_guest("blue-analytics"))
        .expect("blue guest");
    println!("\nred-ci-runner   = {red_vm} (parent: {team_red})");
    println!("blue-analytics  = {blue_vm} (parent: {team_blue})");

    // Within a team: full lifecycle control.
    platform
        .hv
        .hypercall(team_red, Hypercall::DomctlPauseDomain { target: red_vm })
        .expect("own VM pausable");
    platform
        .hv
        .hypercall(team_red, Hypercall::DomctlUnpauseDomain { target: red_vm })
        .expect("own VM resumable");
    platform
        .hv
        .hypercall(
            team_red,
            Hypercall::DomctlSetMaxMem {
                target: red_vm,
                memory_mib: 2048,
            },
        )
        .expect("own VM resizable");
    println!("\nTeam red managed its own VM: pause, unpause, resize — all permitted.");

    // Across teams: every management hypercall is refused, even though
    // both toolstacks hold the same *hypercall* whitelist — the
    // per-argument parent-toolstack check (§5.6) is what blocks it.
    let attempts: Vec<(&str, HvError)> = vec![
        (
            "pause",
            platform
                .hv
                .hypercall(team_red, Hypercall::DomctlPauseDomain { target: blue_vm })
                .unwrap_err(),
        ),
        (
            "destroy",
            platform
                .hv
                .hypercall(team_red, Hypercall::DomctlDestroyDomain { target: blue_vm })
                .unwrap_err(),
        ),
        (
            "resize",
            platform
                .hv
                .hypercall(
                    team_red,
                    Hypercall::DomctlSetMaxMem {
                        target: blue_vm,
                        memory_mib: 64,
                    },
                )
                .unwrap_err(),
        ),
    ];
    println!("\nTeam red attacking team blue's VM:");
    for (what, err) in attempts {
        println!("  {what:<8} → {err}");
    }

    // The audit trail shows exactly who manages what.
    let deps = platform.audit.dependency_graph_at(u64::MAX);
    println!("\nDependency graph (guest → shard):");
    for (g, s) in deps {
        println!("  {g} → {s}");
    }
}
