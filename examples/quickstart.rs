//! Quickstart: boot Xoar, create a guest, and do some I/O.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! This walks the whole public API surface once: platform boot (§5.2),
//! guest creation through the Toolstack → Builder path, split-driver I/O,
//! a NetBack microreboot, and the audit log.

use xoar_core::platform::{GuestConfig, Platform, XoarConfig};
use xoar_core::restart::{RestartEngine, RestartPath, RestartPolicy};
use xoar_devices::blk::BlkOp;

fn main() {
    // 1. Boot the disaggregated platform: Bootstrapper → XenStore →
    //    Console Manager → Builder → PCIBack → driver domains →
    //    Toolstack, then the boot-only shards self-destruct.
    let mut platform = Platform::xoar(XoarConfig::default());
    println!("Booted Xoar with services:");
    println!("  xenstore   = {}", platform.services.xenstore);
    println!("  builder    = {}", platform.services.builder);
    println!("  netback    = {}", platform.services.netbacks[0]);
    println!("  blkback    = {}", platform.services.blkbacks[0]);
    println!("  toolstack  = {}", platform.services.toolstacks[0]);
    println!(
        "  service memory: {} MiB (Dom0 default: 750 MiB)",
        platform.service_memory_mib()
    );

    // 2. Create a guest: the Toolstack asks the Builder; devices are
    //    negotiated over XenStore with real grants and event channels.
    let toolstack = platform.services.toolstacks[0];
    let guest = platform
        .create_guest(toolstack, GuestConfig::evaluation_guest("web-frontend"))
        .expect("guest creation");
    println!(
        "\nCreated {guest} ({} domains live)",
        platform.hv.domain_count()
    );

    // 3. Drive I/O through the split drivers.
    platform
        .blk_submit(guest, BlkOp::Write, 0, 8)
        .expect("submit");
    let stats = platform.process_blkbacks();
    println!(
        "Block write completed: {} request(s), {} bytes",
        stats.completed, stats.bytes
    );
    platform.net_transmit(guest, 1, 1500).expect("transmit");
    let stats = platform.process_netbacks();
    println!(
        "Network frame on the wire: {} frame(s), {} bytes",
        stats.tx_frames, stats.tx_bytes
    );

    // 4. Microreboot NetBack: fresh state, bounded downtime, guests keep
    //    running.
    let netback = platform.services.netbacks[0];
    let mut engine = RestartEngine::new();
    engine
        .register(
            &mut platform,
            netback,
            RestartPolicy::Timer {
                interval_ns: 10_000_000_000,
            },
            RestartPath::Fast,
        )
        .expect("register");
    let outcome = engine.restart(&mut platform, netback).expect("restart");
    println!(
        "\nMicrorebooted {netback}: downtime {:.0} ms, {} in-flight request(s) to retransmit",
        outcome.downtime_ns as f64 / 1e6,
        outcome.requests_lost
    );

    // 5. The audit log recorded everything.
    println!("\nAudit log ({} records):", platform.audit.len());
    for line in platform.audit.to_json_lines().lines().take(6) {
        println!("  {line}");
    }
    println!("  ...");
}
