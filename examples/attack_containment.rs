//! Attack containment, side by side (§6.2).
//!
//! ```sh
//! cargo run --example attack_containment
//! ```
//!
//! Launches the same device-emulation exploit (the paper's biggest attack
//! class: 14 of 23 guest-originated vulnerabilities) from a hostile HVM
//! guest on stock Xen and on Xoar, and prints what the attacker actually
//! gets in each case.

use xoar_core::platform::{GuestConfig, Platform, XoarConfig};
use xoar_hypervisor::DomId;
use xoar_security::containment::{blast_radius, landing_domain};
use xoar_security::corpus::AttackVector;

fn hvm(p: &mut Platform, name: &str) -> DomId {
    let ts = p.services.toolstacks[0];
    let mut cfg = GuestConfig::evaluation_guest(name);
    cfg.hvm = true;
    p.create_guest(ts, cfg).expect("guest")
}

fn describe(p: &Platform, attacker: DomId, label: &str) {
    println!("--- {label} ---");
    let landed =
        landing_domain(p, attacker, AttackVector::DeviceEmulation).expect("device model exists");
    let d = p.hv.domain(landed).expect("live");
    println!("Exploit lands in: {landed} ({})", d.name);
    let r = blast_radius(p, landed);
    println!("Attacker can now:");
    println!("  read/write memory of: {:?}", r.memory_of);
    println!("  intercept traffic of: {:?}", r.traffic_of);
    println!("  manage (create/destroy) VMs: {}", r.can_manage_vms);
    println!("  take down the whole host:    {}", r.host_compromised);
    println!();
}

fn main() {
    // The same cast on both platforms: a hostile guest, an innocent
    // victim, both HVM (served by device emulation).
    let mut stock = Platform::stock_xen();
    let attacker = hvm(&mut stock, "hostile-tenant");
    let victim = hvm(&mut stock, "innocent-tenant");
    println!(
        "Scenario: {attacker} exploits a bug in its emulated device model\n\
         (the paper's largest vector: 14/23 guest-originated vulnerabilities).\n"
    );
    describe(&stock, attacker, "Stock Xen: device model runs in Dom0");

    let mut xoar = Platform::xoar(XoarConfig::default());
    let attacker = hvm(&mut xoar, "hostile-tenant");
    let victim2 = hvm(&mut xoar, "innocent-tenant");
    describe(
        &xoar,
        attacker,
        "Xoar: device model runs in a per-guest QemuVM",
    );

    // The punchline, verified.
    let stock_radius = blast_radius(
        &stock,
        landing_domain(&stock, attacker, AttackVector::DeviceEmulation).unwrap(),
    );
    assert!(stock_radius.host_compromised || stock_radius.memory_of.contains(&victim));
    let xoar_radius = blast_radius(
        &xoar,
        landing_domain(&xoar, attacker, AttackVector::DeviceEmulation).unwrap(),
    );
    assert!(!xoar_radius.host_compromised);
    assert!(!xoar_radius.memory_of.contains(&victim2));
    println!(
        "Verdict: on stock Xen the exploit owns the platform; on Xoar it owns\n\
         one stub domain with rights over nobody but the attacker itself —\n\
         \"an attacker … will now have the full privileges of the QemuVM,\n\
         rather than Dom0 privileges and has no rights over any other VM.\""
    );
}
